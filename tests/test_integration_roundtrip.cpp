// End-to-end integration through the serialization boundary: a locked
// design written to .bench, reloaded, realized, laid out, split and
// attacked must behave identically to the in-memory pipeline. This is the
// path a downstream user of the CLI exercises.
#include <gtest/gtest.h>

#include "attack/metrics.hpp"
#include "attack/proximity.hpp"
#include "circuits/random_circuit.hpp"
#include "core/flow.hpp"
#include "lec/lec.hpp"
#include "lock/atpg_lock.hpp"
#include "lock/key.hpp"
#include "netlist/bench_io.hpp"
#include "phys/placer.hpp"
#include "phys/router.hpp"
#include "sim/metrics.hpp"
#include "split/split.hpp"

namespace splitlock {
namespace {

Netlist TestCircuit(uint64_t seed) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 10;
  spec.num_gates = 500;
  spec.seed = seed;
  return circuits::GenerateCircuit(spec);
}

TEST(Roundtrip, LockedNetlistSurvivesSerialization) {
  const Netlist original = TestCircuit(1);
  lock::AtpgLockOptions opts;
  opts.key_bits = 24;
  opts.seed = 1;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);

  const std::string text = WriteBench(locked.locked.Compacted());
  const Netlist reloaded = ReadBench(text, "reloaded");
  EXPECT_EQ(reloaded.Validate(), "");
  ASSERT_EQ(reloaded.KeyInputs().size(), locked.key.size());

  // Key order is preserved through serialization (key inputs are written
  // and re-read in insertion order), so the same key vector unlocks it.
  const LecResult lec = CheckEquivalence(original, reloaded, {}, locked.key);
  EXPECT_TRUE(lec.proven);
  EXPECT_TRUE(lec.equivalent);
}

TEST(Roundtrip, ReloadedDesignIsAttackableIdentically) {
  const Netlist original = TestCircuit(2);
  lock::AtpgLockOptions opts;
  opts.key_bits = 24;
  opts.seed = 2;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);

  // Note: the serialized netlist loses gate *flags* (dont-touch, key-gate),
  // which are design-tool state, not circuit function. Rebuild them the
  // way the CLI does: key inputs and their sinks are re-identified
  // structurally.
  const std::string text = WriteBench(locked.locked.Compacted());
  Netlist reloaded = ReadBench(text, "reloaded");
  for (GateId k : reloaded.KeyInputs()) {
    Gate& key_input = reloaded.gate(k);
    key_input.flags |= kFlagTie | kFlagDontTouch;
    for (const Pin& p : reloaded.net(key_input.out).sinks) {
      reloaded.gate(p.gate).flags |= kFlagKeyGate | kFlagDontTouch;
    }
  }

  const Netlist realized = lock::RealizeKeyAsTies(reloaded, locked.key);
  phys::PlacerOptions popts;
  popts.seed = 2;
  popts.moves_per_cell = 15;
  phys::Layout layout =
      phys::PlaceDesign(realized, phys::Tech::Nangate45Like(), popts);
  phys::RouterOptions ropts;
  ropts.seed = 2;
  phys::RouteDesign(layout, ropts);
  Netlist mutable_realized = realized;  // layout references `realized`...
  // (LiftKeyNets requires the same object; re-place on the mutable copy.)
  layout = phys::PlaceDesign(mutable_realized, phys::Tech::Nangate45Like(),
                             popts);
  phys::RouteDesign(layout, ropts);
  phys::LiftKeyNets(layout, mutable_realized, 5, 2);
  const split::FeolView feol = split::SplitLayout(layout, 4);

  // All key-nets broken; attack stays at guessing.
  for (NetId kn : phys::KeyNetsOf(mutable_realized)) {
    EXPECT_TRUE(feol.net_broken[kn]);
  }
  const attack::ProximityResult atk = attack::RunProximityAttack(feol);
  const attack::CcrReport ccr = attack::ComputeCcr(feol, atk.assignment);
  ASSERT_GT(ccr.key_connections, 0u);
  EXPECT_LT(ccr.key_physical_ccr_percent, 25.0);
}

TEST(Roundtrip, RealizedTieNetlistSerializes) {
  const Netlist original = TestCircuit(3);
  lock::AtpgLockOptions opts;
  opts.key_bits = 16;
  opts.seed = 3;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);
  const Netlist realized =
      lock::RealizeKeyAsTies(locked.locked, locked.key).Compacted();
  const Netlist reloaded = ReadBench(WriteBench(realized), "r");
  EXPECT_EQ(reloaded.Validate(), "");
  // TIE-realized designs compute the original function outright.
  EXPECT_TRUE(RandomPatternsAgree(original, reloaded, 1024, 3));
}

}  // namespace
}  // namespace splitlock
