// Tests for tools/lint — the determinism & concurrency linter.
//
// Each rule is driven over inline fixture snippets: a positive hit, a
// negative near-miss, a pragma-suppressed hit, and a malformed pragma.
// The last test smoke-runs the linter over the real tree and asserts the
// acceptance contract: zero unsuppressed violations, and every
// suppression carries a reason.
#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "lint/lexer.hpp"
#include "lint/lint.hpp"

namespace splitlock::lint {
namespace {

// Count violations of `rule`; suppressed ones only when `suppressed`.
size_t Count(const LintResult& r, const std::string& rule,
             bool suppressed = false) {
  size_t k = 0;
  for (const Violation& v : r.violations) {
    if (v.rule == rule && v.suppressed == suppressed) ++k;
  }
  return k;
}

LintResult RunLint(const std::string& path, const std::string& src,
               int schema_version = -1) {
  LintOptions opts;
  opts.expected_schema_version = schema_version;
  return LintSource(path, src, opts);
}

// --- lexer ------------------------------------------------------------------

TEST(Lexer, TokensCommentsAndLiterals) {
  const auto lex = Lex(
      "int a = 42; // note\n"
      "const char* s = \"rand() inside string\";\n"
      "/* block\n   comment */ a += 0x1p3;\n");
  // No identifier token leaks out of the string literal.
  for (const Token& t : lex.tokens) {
    EXPECT_FALSE(t.kind == TokKind::kIdent && t.text == "rand") << t.text;
  }
  ASSERT_EQ(lex.comments.size(), 2u);
  EXPECT_EQ(lex.comments[0].text, " note");
  EXPECT_EQ(lex.comments[1].line, 3);
  // += survives as one punct token.
  EXPECT_NE(std::find_if(lex.tokens.begin(), lex.tokens.end(),
                         [](const Token& t) { return t.text == "+="; }),
            lex.tokens.end());
}

TEST(Lexer, RawStringsDoNotLeakTokens) {
  const auto lex = Lex("auto s = R\"(rand() system_clock)\"; int x;");
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "rand");
    EXPECT_NE(t.text, "system_clock");
  }
}

TEST(Lexer, AdjacentLineCommentsMerge) {
  const auto lex = Lex("// first\n// second\nint x;\n// detached\n");
  ASSERT_EQ(lex.comments.size(), 2u);
  EXPECT_EQ(lex.comments[0].text, " first second");
  EXPECT_EQ(lex.comments[0].end_line, 2);
}

// --- raw-random -------------------------------------------------------------

TEST(RawRandom, FlagsStdlibPrimitives) {
  EXPECT_EQ(Count(RunLint("src/a.cpp", "int x = rand();"), "raw-random"), 1u);
  EXPECT_EQ(Count(RunLint("src/a.cpp", "std::mt19937_64 eng(7);"), "raw-random"),
            1u);
  EXPECT_EQ(
      Count(RunLint("src/a.cpp", "std::uniform_int_distribution<int> d(0, 9);"),
            "raw-random"),
      1u);
  EXPECT_EQ(Count(RunLint("src/a.cpp", "std::random_device rd;"), "raw-random"),
            1u);
  EXPECT_EQ(Count(RunLint("src/a.cpp", "#include <random>\n"), "raw-random"),
            1u);
  EXPECT_EQ(Count(RunLint("src/a.cpp", "std::shuffle(v.begin(), v.end(), g);"),
                  "raw-random"),
            1u);
}

TEST(RawRandom, NegativeMisses) {
  // The repo's own portable draws are fine.
  EXPECT_EQ(Count(RunLint("src/a.cpp", "rng.NextUint(7); stream.NextWord();"),
                  "raw-random"),
            0u);
  // Member access named rand is not ::rand.
  EXPECT_EQ(Count(RunLint("src/a.cpp", "cfg.rand(); obj->rand();"),
                  "raw-random"),
            0u);
  // The repo's capitalized Shuffle is not std::shuffle.
  EXPECT_EQ(Count(RunLint("src/a.cpp", "rng.Shuffle(v);"), "raw-random"), 0u);
  // Words inside strings/comments don't count.
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "const char* s = \"rand()\"; // rand() here\n"),
                  "raw-random"),
            0u);
}

TEST(RawRandom, RngHomesAreAllowlisted) {
  const std::string src = "std::mt19937_64 engine_; int r = rand();";
  EXPECT_EQ(Count(RunLint("src/util/rng.hpp", src), "raw-random"), 0u);
  EXPECT_EQ(Count(RunLint("src/exec/stream_rng.hpp", src), "raw-random"), 0u);
  EXPECT_EQ(Count(RunLint("src/phys/placer.cpp", src), "raw-random"), 2u);
}

TEST(RawRandom, PragmaSuppressesWithReason) {
  const auto r = RunLint("src/a.cpp",
                     "// lint:allow(raw-random) seeding an external "
                     "library's reproducible self-test\n"
                     "std::mt19937_64 eng(7);\n");
  EXPECT_EQ(Count(r, "raw-random", /*suppressed=*/false), 0u);
  ASSERT_EQ(Count(r, "raw-random", /*suppressed=*/true), 1u);
  for (const Violation& v : r.violations) {
    if (v.suppressed) EXPECT_FALSE(v.reason.empty());
  }
}

// --- wall-clock -------------------------------------------------------------

TEST(WallClock, FlagsWallClockSources) {
  // Both the `chrono` mention and the wall-clock type trip the rule.
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "auto t = std::chrono::system_clock::now();"),
                  "wall-clock"),
            2u);
  EXPECT_EQ(Count(RunLint("src/a.cpp", "time_t t = time(nullptr);"),
                  "wall-clock"),
            1u);
  EXPECT_EQ(Count(RunLint("src/a.cpp", "auto t = std::time(nullptr);"),
                  "wall-clock"),
            1u);
  EXPECT_EQ(Count(RunLint("src/a.cpp", "gettimeofday(&tv, nullptr);"),
                  "wall-clock"),
            1u);
}

TEST(WallClock, ChronoIsConfinedToClockHomes) {
  // Any mention of chrono outside the clock homes is a violation — even
  // steady_clock, which must be reached through Stopwatch/MonotonicMicros.
  EXPECT_EQ(Count(RunLint("src/a.cpp", "#include <chrono>\n"), "wall-clock"),
            1u);
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "auto t = std::chrono::steady_clock::now();"),
                  "wall-clock"),
            1u);
  // The clock homes may use chrono freely.
  EXPECT_EQ(Count(RunLint("src/util/stopwatch.hpp",
                      "#include <chrono>\n"
                      "auto t = std::chrono::steady_clock::now();"),
                  "wall-clock"),
            0u);
  EXPECT_EQ(Count(RunLint("src/obs/clock.hpp",
                      "#include <chrono>\n"
                      "auto t = std::chrono::steady_clock::now();"),
                  "wall-clock"),
            0u);
  // The GC mtime shim is a clock home too: file mtimes are wall-clock by
  // nature but only order artifact evictions, never feed a record.
  EXPECT_EQ(Count(RunLint("src/store/fs_clock.hpp",
                      "#include <chrono>\n"
                      "auto n = std::chrono::nanoseconds(0);"),
                  "wall-clock"),
            0u);
  // A neighbor in the same directory gets no exemption.
  EXPECT_EQ(Count(RunLint("src/store/result_store.cpp",
                      "#include <chrono>\n"),
                  "wall-clock"),
            1u);
}

TEST(WallClock, SteadyClockAndDeclarationsPass) {
  // A function *named* time is a declaration, not a call of ::time.
  EXPECT_EQ(Count(RunLint("src/a.cpp", "double time(int x) { return 0; }"),
                  "wall-clock"),
            0u);
  // Member .time() is not ::time().
  EXPECT_EQ(Count(RunLint("src/a.cpp", "double t = report.time();"),
                  "wall-clock"),
            0u);
  // The telemetry shim is allowlisted.
  EXPECT_EQ(Count(RunLint("src/util/stopwatch.hpp",
                      "auto t = std::chrono::system_clock::now();"),
                  "wall-clock"),
            0u);
}

TEST(WallClock, AllowFilePragma) {
  const auto r = RunLint("src/a.cpp",
                     "// lint:allow-file(wall-clock) profiler tool whose "
                     "output IS wall time\n"
                     "auto a = std::chrono::system_clock::now();\n"
                     "auto b = time(nullptr);\n");
  EXPECT_EQ(Count(r, "wall-clock", false), 0u);
  // Line 2 yields two suppressed hits (chrono + system_clock), line 3 one.
  EXPECT_EQ(Count(r, "wall-clock", true), 3u);
}

// --- unordered-iter ---------------------------------------------------------

TEST(UnorderedIter, FlagsRangeForAndIteratorWalks) {
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "std::unordered_set<int> s;\n"
                      "for (int x : s) out.push_back(x);\n"),
                  "unordered-iter"),
            1u);
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "std::unordered_map<int, int> m;\n"
                      "for (auto it = m.begin(); it != m.end(); ++it) {}\n"),
                  "unordered-iter"),
            1u);
  // Member containers count too.
  EXPECT_EQ(Count(RunLint("src/a.hpp",
                      "struct S {\n"
                      "  std::unordered_map<int, int> cache_;\n"
                      "  void Dump() { for (auto& kv : cache_) Emit(kv); }\n"
                      "};\n"),
                  "unordered-iter"),
            1u);
}

TEST(UnorderedIter, MembershipAndOrderedContainersPass) {
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "std::unordered_set<int> s;\n"
                      "if (s.count(3) != 0) s.insert(4);\n"
                      "auto it = s.find(5);\n"),
                  "unordered-iter"),
            0u);
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "std::set<int> s;\n"
                      "for (int x : s) out.push_back(x);\n"),
                  "unordered-iter"),
            0u);
  // Same-named iteration without an unordered declaration in scope.
  EXPECT_EQ(Count(RunLint("src/a.cpp", "for (int x : values) Use(x);\n"),
                  "unordered-iter"),
            0u);
}

TEST(UnorderedIter, OrderedReductionAnnotation) {
  const auto r = RunLint("src/a.cpp",
                     "std::unordered_set<int> s;\n"
                     "int sum = 0;\n"
                     "// lint:ordered-reduction summing into a scalar is "
                     "order-insensitive\n"
                     "for (int x : s) sum += x;\n");
  EXPECT_EQ(Count(r, "unordered-iter", false), 0u);
  EXPECT_EQ(Count(r, "unordered-iter", true), 1u);
}

TEST(UnorderedIter, AnnotationWithoutReasonIsRejected) {
  const auto r = RunLint("src/a.cpp",
                     "std::unordered_set<int> s;\n"
                     "// lint:ordered-reduction\n"
                     "for (int x : s) Use(x);\n");
  // The hit stays unsuppressed AND the empty pragma is flagged.
  EXPECT_EQ(Count(r, "unordered-iter", false), 1u);
  EXPECT_EQ(Count(r, "bad-pragma", false), 1u);
}

// --- pointer-sort -----------------------------------------------------------

TEST(PointerSort, FlagsAddressComparison) {
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "std::sort(v.begin(), v.end(),\n"
                      "          [](const Gate* a, const Gate* b) {\n"
                      "            return a < b;\n"
                      "          });\n"),
                  "pointer-sort"),
            1u);
}

TEST(PointerSort, DereferencedAndFieldComparisonsPass) {
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "std::sort(v.begin(), v.end(),\n"
                      "          [](const Gate* a, const Gate* b) {\n"
                      "            return *a < *b;\n"
                      "          });\n"),
                  "pointer-sort"),
            0u);
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "std::sort(v.begin(), v.end(),\n"
                      "          [](const Gate* a, const Gate* b) {\n"
                      "            return a->id < b->id;\n"
                      "          });\n"),
                  "pointer-sort"),
            0u);
  // Value comparators are fine.
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "std::sort(v.begin(), v.end(),\n"
                      "          [](int a, int b) { return a < b; });\n"),
                  "pointer-sort"),
            0u);
}

TEST(PointerSort, PragmaSuppressed) {
  const auto r = RunLint(
      "src/a.cpp",
      "std::sort(v.begin(), v.end(),\n"
      "          // lint:allow(pointer-sort) arena-allocated, address order "
      "is creation order here\n"
      "          [](const T* a, const T* b) { return a < b; });\n");
  EXPECT_EQ(Count(r, "pointer-sort", false), 0u);
}

// --- shared-capture ---------------------------------------------------------

TEST(SharedCapture, FlagsUnsubscriptedSharedWrites) {
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "double sum = 0.0;\n"
                      "exec::ParallelFor(n, 1, [&](size_t lo, size_t hi) {\n"
                      "  for (size_t i = lo; i < hi; ++i) sum += f(i);\n"
                      "});\n"),
                  "shared-capture"),
            1u);
  // Mutating member call on a shared container.
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "std::vector<int> out;\n"
                      "exec::ParallelFor(n, 1, [&](size_t lo, size_t hi) {\n"
                      "  out.push_back(static_cast<int>(lo));\n"
                      "});\n"),
                  "shared-capture"),
            1u);
  // Named by-reference capture is just as shared.
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "uint64_t count = 0;\n"
                      "exec::ParallelFor(n, 1,\n"
                      "    [&count](size_t lo, size_t hi) { ++count; });\n"),
                  "shared-capture"),
            1u);
}

TEST(SharedCapture, DisjointAndLocalWritesPass) {
  // The repo idiom: subscripted writes into preallocated slots.
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "exec::ParallelFor(n, 1, [&](size_t lo, size_t hi) {\n"
                      "  for (size_t i = lo; i < hi; ++i) out[i] = f(i);\n"
                      "});\n"),
                  "shared-capture"),
            0u);
  // Locals declared inside the lambda, including template-heavy ones.
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "exec::ParallelReduce<std::set<std::vector<int>>>(\n"
                      "    n, 1, {}, [&](size_t lo, size_t hi) {\n"
                      "      std::set<std::vector<int>> local;\n"
                      "      local.insert(make(lo));\n"
                      "      int acc = 0;\n"
                      "      acc += static_cast<int>(hi);\n"
                      "      return local;\n"
                      "    },\n"
                      "    [](auto x, auto y) { x.merge(y); return x; });\n"),
                  "shared-capture"),
            0u);
  // Writes through nested chains ending in a subscript are disjoint.
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "exec::ParallelFor(n, 1, [&](size_t lo, size_t hi) {\n"
                      "  state.rows[lo].value = f(lo);\n"
                      "});\n"),
                  "shared-capture"),
            0u);
  // By-value captures cannot write shared state.
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "exec::ParallelFor(n, 1, [=](size_t, size_t) mutable "
                      "{ acc += 1; });\n"),
                  "shared-capture"),
            0u);
}

TEST(SharedCapture, DeclarationsAreNotCalls) {
  // The exec library's own declarations/definitions must not trip the rule.
  EXPECT_EQ(Count(RunLint("src/exec/parallel.hpp",
                      "void ParallelFor(size_t n, size_t grain,\n"
                      "    const std::function<void(size_t, size_t)>& "
                      "body);\n"),
                  "shared-capture"),
            0u);
}

TEST(SharedCapture, PragmaSuppressed) {
  const auto r = RunLint(
      "src/a.cpp",
      "std::vector<int> out;\n"
      "exec::ParallelFor(n, 1, [&](size_t lo, size_t hi) {\n"
      "  // lint:allow(shared-capture) guarded by per-chunk mutex, order "
      "resolved serially after the join\n"
      "  out.push_back(static_cast<int>(lo));\n"
      "});\n");
  EXPECT_EQ(Count(r, "shared-capture", false), 0u);
  EXPECT_EQ(Count(r, "shared-capture", true), 1u);
}

// --- schema-version ---------------------------------------------------------

TEST(SchemaVersion, MissingAndStaleAnnotations) {
  const std::string def =
      "struct CampaignRecord {\n  int x = 0;\n};\n";
  EXPECT_EQ(Count(RunLint("src/store/result_store.hpp", def, 3),
                  "schema-version"),
            1u);
  const std::string stale =
      "// lint:result-schema(v2) canonical record\n"
      "struct CampaignRecord {\n  int x = 0;\n};\n";
  const auto r = RunLint("src/store/result_store.hpp", stale, 3);
  ASSERT_EQ(Count(r, "schema-version"), 1u);
  EXPECT_NE(r.violations[0].message.find("stale"), std::string::npos);
  // The two-level split's flow summary is watched like the records it
  // composes into.
  EXPECT_EQ(Count(RunLint("src/store/result_store.hpp",
                      "struct FlowRecord {\n  int x = 0;\n};\n", 4),
                  "schema-version"),
            1u);
}

TEST(SchemaVersion, CurrentAnnotationAndUnwatchedStructsPass) {
  EXPECT_EQ(Count(RunLint("src/store/result_store.hpp",
                      "// lint:result-schema(v3) canonical record\n"
                      "struct CampaignRecord {\n  int x = 0;\n};\n",
                      3),
                  "schema-version"),
            0u);
  // Unwatched structs need no annotation.
  EXPECT_EQ(Count(RunLint("src/a.hpp", "struct Options {\n  int x;\n};\n", 3),
                  "schema-version"),
            0u);
  // Forward declarations and pointer uses are not definitions.
  EXPECT_EQ(Count(RunLint("src/a.hpp",
                      "struct Layout;\nvoid f(const struct Layout* l);\n",
                      3),
                  "schema-version"),
            0u);
  // Rule disabled in fixture mode without a version.
  EXPECT_EQ(Count(RunLint("src/store/result_store.hpp",
                      "struct CampaignRecord {\n  int x = 0;\n};\n"),
                  "schema-version"),
            0u);
}

TEST(SchemaVersion, ParseSchemaVersionReadsConstant) {
  EXPECT_EQ(ParseSchemaVersion(
                "inline constexpr int kResultSchemaVersion = 3;"),
            std::optional<int>(3));
  EXPECT_EQ(ParseSchemaVersion("int unrelated = 7;"), std::nullopt);
}

// --- obs-metric-once --------------------------------------------------------

TEST(ObsMetricOnce, DuplicateLiteralRegistrationFlagged) {
  const auto r = RunLint(
      "src/a.cpp",
      "obs::Registry::Instance().RegisterCounter(\"exec.test.dup\");\n"
      "obs::Registry::Instance().RegisterCounter(\"exec.test.dup\");\n");
  ASSERT_EQ(Count(r, "obs-metric-once"), 1u);
  // The second site is the violation; it points back at the first.
  const Violation& v = r.violations[0];
  EXPECT_EQ(v.line, 2);
  EXPECT_NE(v.message.find("src/a.cpp:1"), std::string::npos) << v.message;
}

TEST(ObsMetricOnce, DistinctAndComputedNamesPass) {
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "r.RegisterCounter(\"exec.test.a\");\n"
                      "r.RegisterGauge(\"exec.test.b\");\n"
                      "r.RegisterHistogram(\"exec.test.c\", {4});\n"
                      "r.RegisterTime(\"exec.test.d\");\n"),
                  "obs-metric-once"),
            0u);
  // Computed names are invisible to the lexical audit (documented gap:
  // the registry itself still throws on a live duplicate).
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "r.RegisterCounter(prefix + \".hits\");\n"
                      "r.RegisterCounter(prefix + \".hits\");\n"),
                  "obs-metric-once"),
            0u);
}

TEST(ObsMetricOnce, PragmaSuppressesSecondSite) {
  const auto r = RunLint(
      "src/a.cpp",
      "r.RegisterHistogram(\"test.obs.h\", {4});\n"
      "// lint:allow(obs-metric-once) exercising the duplicate-throw path "
      "against a local registry\n"
      "r.RegisterHistogram(\"test.obs.h\", {4});\n");
  EXPECT_EQ(Count(r, "obs-metric-once", false), 0u);
  EXPECT_EQ(Count(r, "obs-metric-once", true), 1u);
}

// --- pragmas ----------------------------------------------------------------

TEST(Pragmas, MalformedPragmasAreRejected) {
  // Unknown rule.
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "// lint:allow(no-such-rule) whatever\nint x;\n"),
                  "bad-pragma"),
            1u);
  // Missing reason.
  EXPECT_EQ(
      Count(RunLint("src/a.cpp", "// lint:allow(raw-random)\nint x;\n"),
            "bad-pragma"),
      1u);
  // Unknown directive.
  EXPECT_EQ(
      Count(RunLint("src/a.cpp", "// lint:alow(raw-random) typo\nint x;\n"),
            "bad-pragma"),
      1u);
  // bad-pragma itself is not suppressible.
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "// lint:allow(bad-pragma) nice try\nint x;\n"),
                  "bad-pragma"),
            1u);
  // Malformed result-schema annotation.
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "// lint:result-schema(vNaN) nope\nint x;\n"),
                  "bad-pragma"),
            1u);
}

TEST(Pragmas, ProseMentionsAreNotDirectives) {
  // Namespace-qualified and quoted mentions must not parse as pragmas.
  EXPECT_EQ(Count(RunLint("src/a.cpp",
                      "// end namespace splitlock::lint::internal\n"
                      "// the string \"lint:\" is how directives start\n"
                      "// `lint:allow(...)` is the grammar\n"
                      "int x;\n"),
                  "bad-pragma"),
            0u);
}

TEST(Pragmas, SuppressionWindowIsTight) {
  // A pragma two code lines above the violation does not suppress it.
  const auto r = RunLint("src/a.cpp",
                     "// lint:allow(raw-random) only covers the next line\n"
                     "int y = 0;\n"
                     "int x = rand();\n");
  EXPECT_EQ(Count(r, "raw-random", false), 1u);
}

// --- reports ----------------------------------------------------------------

TEST(Report, JsonShape) {
  const auto r = RunLint("src/a.cpp", "int x = rand();");
  const std::string json = ToJson(r);
  EXPECT_NE(json.find("\"tool\":\"splitlock_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"raw-random\""), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/a.cpp\""), std::string::npos);
}

TEST(Report, RuleFilterRestrictsRules) {
  LintOptions opts;
  opts.rules = {"wall-clock"};
  const auto r = LintSource(
      "src/a.cpp", "int x = rand(); auto t = time(nullptr);", opts);
  EXPECT_EQ(Count(r, "raw-random"), 0u);
  EXPECT_EQ(Count(r, "wall-clock"), 1u);
}

// --- the real tree ----------------------------------------------------------

TEST(Tree, RepoIsCleanAndSuppressionsCarryReasons) {
  const LintResult r = LintTree(SPLITLOCK_SOURCE_DIR);
  ASSERT_GT(r.files_scanned, 100u);  // the scan actually found the tree
  for (const Violation& v : r.violations) {
    EXPECT_TRUE(v.suppressed) << v.file << ":" << v.line << " [" << v.rule
                              << "] " << v.message;
    if (v.suppressed) {
      EXPECT_FALSE(v.reason.empty())
          << v.file << ":" << v.line << " suppression without a reason";
    }
  }
  EXPECT_EQ(r.UnsuppressedCount(), 0u);
}

}  // namespace
}  // namespace splitlock::lint
