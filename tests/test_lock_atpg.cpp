#include <gtest/gtest.h>

#include "circuits/random_circuit.hpp"
#include "circuits/suites.hpp"
#include "lec/lec.hpp"
#include "lock/atpg_lock.hpp"
#include "lock/key.hpp"
#include "netlist/libcell.hpp"
#include "sim/metrics.hpp"

namespace splitlock::lock {
namespace {

Netlist BiasedCircuit(uint64_t seed, size_t gates = 600) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 12;
  spec.num_gates = gates;
  spec.seed = seed;
  spec.bias_cone_fraction = 0.18;
  return circuits::GenerateCircuit(spec);
}

TEST(AtpgLock, ExactKeyLengthAndLec) {
  const Netlist original = BiasedCircuit(1);
  AtpgLockOptions opts;
  opts.key_bits = 48;
  opts.seed = 1;
  const AtpgLockResult r = LockWithAtpg(original, opts);
  EXPECT_EQ(r.key.size(), 48u);
  EXPECT_EQ(r.locked.KeyInputs().size(), 48u);
  EXPECT_EQ(r.pattern_bits + r.padding_bits, 48u);
  EXPECT_EQ(r.locked.Validate(), "");
  EXPECT_TRUE(r.lec_proven);
  EXPECT_TRUE(r.lec_equivalent);
}

TEST(AtpgLock, InjectsAtLeastOneFault) {
  const Netlist original = BiasedCircuit(2);
  AtpgLockOptions opts;
  opts.key_bits = 48;
  opts.seed = 2;
  const AtpgLockResult r = LockWithAtpg(original, opts);
  EXPECT_GE(r.faults.size(), 1u);
  EXPECT_GT(r.pattern_bits, 0u);
  for (const InjectedFault& f : r.faults) {
    EXPECT_GT(f.key_bits, 0u);
    EXPECT_GT(f.cone_area_removed, 0.0);
    EXPECT_LE(f.cubes, opts.max_cubes);
    EXPECT_LE(f.cut_leaves, opts.max_cut_leaves);
  }
}

TEST(AtpgLock, WrongKeyProducesErrors) {
  const Netlist original = BiasedCircuit(3);
  AtpgLockOptions opts;
  opts.key_bits = 32;
  opts.seed = 3;
  const AtpgLockResult r = LockWithAtpg(original, opts);
  std::vector<uint8_t> wrong = r.key;
  for (uint8_t& b : wrong) b ^= 1;
  // The difference set of a wrong comparator key can be tiny (that is the
  // point of picking biased nets), so prove inequivalence formally rather
  // than sampling for it.
  const LecResult lec = CheckEquivalence(original, r.locked, {}, wrong);
  ASSERT_TRUE(lec.proven);
  EXPECT_FALSE(lec.equivalent);
}

TEST(AtpgLock, KeyRoughlyUniform) {
  const Netlist original = BiasedCircuit(4, 800);
  AtpgLockOptions opts;
  opts.key_bits = 128;
  opts.seed = 4;
  const AtpgLockResult r = LockWithAtpg(original, opts);
  // Uniformly drawn bits: 128 draws should not be wildly unbalanced.
  const double ones = KeyOnesFraction(r.key);
  EXPECT_GT(ones, 0.3);
  EXPECT_LT(ones, 0.7);
}

TEST(AtpgLock, ComparatorGateTypeDoesNotLeakBit) {
  // In the restore comparator both XOR/XNOR carry both bit values
  // (Sec. III-A uniform key constraint) — unlike classic EPIC, where the
  // gate type determines the bit. A single design can be skewed (its
  // comparators may predominantly require one literal polarity), so
  // aggregate over several designs.
  int histogram[2][2] = {{0, 0}, {0, 0}};  // [is_xnor][bit]
  for (uint64_t seed : {5, 6, 7}) {
    const Netlist original = BiasedCircuit(seed, 900);
    AtpgLockOptions opts;
    opts.key_bits = 96;
    opts.seed = seed;
    opts.verify_lec = false;
    const AtpgLockResult r = LockWithAtpg(original, opts);
    ASSERT_GT(r.pattern_bits, 8u) << "need enough comparator bits to test";
    const std::vector<GateId> keys = r.locked.KeyInputs();
    for (size_t i = 0; i < r.pattern_bits; ++i) {
      const NetId key_net = r.locked.gate(keys[i]).out;
      const Gate& kg = r.locked.gate(r.locked.net(key_net).sinks[0].gate);
      if (!kg.HasFlag(kFlagRestore)) continue;
      ++histogram[kg.op == GateOp::kXnor ? 1 : 0][r.key[i]];
    }
  }
  // Every (type, bit) combination must occur: knowing the gate type tells
  // the attacker nothing about the bit.
  for (int t = 0; t < 2; ++t) {
    for (int b = 0; b < 2; ++b) {
      EXPECT_GT(histogram[t][b], 0) << "type " << t << " bit " << b;
    }
  }
}

TEST(AtpgLock, DontTouchProtectsKeyNetwork) {
  const Netlist original = BiasedCircuit(6);
  AtpgLockOptions opts;
  opts.key_bits = 24;
  opts.seed = 6;
  const AtpgLockResult r = LockWithAtpg(original, opts);
  for (GateId k : r.locked.KeyInputs()) {
    const Gate& key_input = r.locked.gate(k);
    EXPECT_TRUE(key_input.HasFlag(kFlagDontTouch));
    EXPECT_TRUE(key_input.HasFlag(kFlagTie));
    ASSERT_FALSE(r.locked.net(key_input.out).sinks.empty());
    for (const Pin& p : r.locked.net(key_input.out).sinks) {
      EXPECT_TRUE(r.locked.gate(p.gate).HasFlag(kFlagKeyGate));
      EXPECT_TRUE(r.locked.gate(p.gate).HasFlag(kFlagDontTouch));
    }
  }
}

TEST(AtpgLock, AreaAccountingConsistent) {
  const Netlist original = BiasedCircuit(7);
  AtpgLockOptions opts;
  opts.key_bits = 48;
  opts.seed = 7;
  const AtpgLockResult r = LockWithAtpg(original, opts);
  EXPECT_NEAR(r.original_area_um2, TotalCellArea(original), 1e-6);
  EXPECT_NEAR(r.locked_area_um2, TotalCellArea(r.locked), 1e-6);
  EXPECT_GT(r.locked_area_um2, 0.0);
}

TEST(AtpgLock, WorksOnIscasScale) {
  const Netlist original = circuits::MakeIscas("c880");
  AtpgLockOptions opts;
  opts.key_bits = 64;
  opts.seed = 8;
  const AtpgLockResult r = LockWithAtpg(original, opts);
  EXPECT_EQ(r.key.size(), 64u);
  EXPECT_TRUE(r.lec_equivalent);
}

// Property sweep: locking must preserve the function under the correct key
// for a range of circuits and key sizes.
struct LockCase {
  uint64_t seed;
  size_t key_bits;
};

class AtpgLockProperty : public ::testing::TestWithParam<LockCase> {};

TEST_P(AtpgLockProperty, CorrectKeyEquivalent) {
  const LockCase c = GetParam();
  const Netlist original = BiasedCircuit(c.seed, 500);
  AtpgLockOptions opts;
  opts.key_bits = c.key_bits;
  opts.seed = c.seed;
  opts.verify_lec = false;  // verified explicitly below
  const AtpgLockResult r = LockWithAtpg(original, opts);
  EXPECT_EQ(r.key.size(), c.key_bits);
  const LecResult lec = CheckEquivalence(original, r.locked, {}, r.key);
  EXPECT_TRUE(lec.proven);
  EXPECT_TRUE(lec.equivalent);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AtpgLockProperty,
    ::testing::Values(LockCase{11, 16}, LockCase{12, 32}, LockCase{13, 48},
                      LockCase{14, 64}, LockCase{15, 96}, LockCase{16, 128}));

}  // namespace
}  // namespace splitlock::lock
