#include <gtest/gtest.h>

#include "circuits/c17.hpp"
#include "circuits/random_circuit.hpp"
#include "lec/lec.hpp"
#include "lock/epic.hpp"
#include "lock/key.hpp"
#include "sim/metrics.hpp"

namespace splitlock::lock {
namespace {

Netlist MidCircuit(uint64_t seed) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 16;
  spec.num_outputs = 8;
  spec.num_gates = 250;
  spec.seed = seed;
  return circuits::GenerateCircuit(spec);
}

TEST(Epic, CorrectKeyPreservesFunction) {
  const Netlist original = circuits::MakeC17();
  Rng rng(1);
  const EpicResult locked = LockWithEpic(original, 8, rng);
  ASSERT_EQ(locked.key.size(), 8u);
  ASSERT_EQ(locked.locked.KeyInputs().size(), 8u);
  EXPECT_EQ(locked.locked.Validate(), "");
  const LecResult lec =
      CheckEquivalence(original, locked.locked, {}, locked.key);
  EXPECT_TRUE(lec.proven);
  EXPECT_TRUE(lec.equivalent);
}

TEST(Epic, WrongKeyBreaksFunction) {
  const Netlist original = circuits::MakeC17();
  Rng rng(2);
  const EpicResult locked = LockWithEpic(original, 8, rng);
  std::vector<uint8_t> wrong = locked.key;
  for (uint8_t& b : wrong) b ^= 1;  // flip every bit
  EXPECT_FALSE(
      RandomPatternsAgree(original, locked.locked, 512, 3, {}, wrong));
}

TEST(Epic, KeyGatesAreFlaggedAndProtected) {
  const Netlist original = circuits::MakeC17();
  Rng rng(4);
  const EpicResult locked = LockWithEpic(original, 4, rng);
  size_t key_gates = 0;
  for (GateId g = 0; g < locked.locked.NumGates(); ++g) {
    const Gate& gate = locked.locked.gate(g);
    if (gate.HasFlag(kFlagKeyGate)) {
      ++key_gates;
      EXPECT_TRUE(gate.HasFlag(kFlagDontTouch));
      EXPECT_TRUE(gate.op == GateOp::kXor || gate.op == GateOp::kXnor);
    }
  }
  EXPECT_EQ(key_gates, 4u);
}

TEST(Epic, GateTypeRevealsBitClassicWeakness) {
  // The classic EPIC leak the paper's comparator avoids: XOR => bit 0,
  // XNOR => bit 1. Document it by testing it.
  const Netlist original = MidCircuit(7);
  Rng rng(7);
  const EpicResult locked = LockWithEpic(original, 32, rng);
  const std::vector<GateId> keys = locked.locked.KeyInputs();
  for (size_t i = 0; i < keys.size(); ++i) {
    const NetId key_net = locked.locked.gate(keys[i]).out;
    ASSERT_EQ(locked.locked.net(key_net).sinks.size(), 1u);
    const Gate& kg =
        locked.locked.gate(locked.locked.net(key_net).sinks[0].gate);
    const uint8_t implied = kg.op == GateOp::kXnor ? 1 : 0;
    EXPECT_EQ(locked.key[i], implied);
  }
}

TEST(ParityPadding, EvenBitsTransparent) {
  Netlist nl = MidCircuit(9);
  const Netlist original = nl;
  std::vector<uint8_t> key;
  Rng rng(9);
  const size_t inserted = InsertParityPaddedKeyGates(nl, 10, rng, &key);
  EXPECT_EQ(inserted, 10u);
  ASSERT_EQ(key.size(), 10u);
  ASSERT_EQ(nl.KeyInputs().size(), 10u);
  EXPECT_TRUE(RandomPatternsAgree(original, nl, 1024, 10, {}, key));
  const LecResult lec = CheckEquivalence(original, nl, {}, key);
  EXPECT_TRUE(lec.equivalent);
}

TEST(ParityPadding, OddBitsUseTriple) {
  Netlist nl = MidCircuit(11);
  const Netlist original = nl;
  std::vector<uint8_t> key;
  Rng rng(11);
  const size_t inserted = InsertParityPaddedKeyGates(nl, 7, rng, &key);
  EXPECT_EQ(inserted, 7u);
  EXPECT_TRUE(RandomPatternsAgree(original, nl, 1024, 12, {}, key));
}

TEST(ParityPadding, FlippingOneBitBreaksFunction) {
  Netlist nl = MidCircuit(13);
  const Netlist original = nl;
  std::vector<uint8_t> key;
  Rng rng(13);
  InsertParityPaddedKeyGates(nl, 6, rng, &key);
  std::vector<uint8_t> wrong = key;
  wrong[0] ^= 1;
  EXPECT_FALSE(RandomPatternsAgree(original, nl, 2048, 14, {}, wrong));
}

TEST(ParityPadding, GateTypeDoesNotDetermineBit) {
  // Across many chains, both XOR-with-1 and XNOR-with-0 must occur: the
  // padded key-gate type must not imply the key bit the way classic EPIC
  // does.
  Netlist nl = MidCircuit(15);
  std::vector<uint8_t> key;
  Rng rng(15);
  InsertParityPaddedKeyGates(nl, 64, rng, &key);
  const std::vector<GateId> keys = nl.KeyInputs();
  bool xor_with_1 = false;
  bool xnor_with_0 = false;
  for (size_t i = 0; i < keys.size(); ++i) {
    const NetId key_net = nl.gate(keys[i]).out;
    const Gate& kg = nl.gate(nl.net(key_net).sinks[0].gate);
    if (kg.op == GateOp::kXor && key[i] == 1) xor_with_1 = true;
    if (kg.op == GateOp::kXnor && key[i] == 0) xnor_with_0 = true;
  }
  EXPECT_TRUE(xor_with_1);
  EXPECT_TRUE(xnor_with_0);
}

TEST(KeyHelpers, RandomKeyRoughlyBalanced) {
  Rng rng(17);
  const std::vector<uint8_t> key = RandomKey(1024, rng);
  const double ones = KeyOnesFraction(key);
  EXPECT_NEAR(ones, 0.5, 0.06);
}

TEST(KeyHelpers, RealizeKeyAsTies) {
  const Netlist original = circuits::MakeC17();
  Rng rng(19);
  const EpicResult locked = LockWithEpic(original, 6, rng);
  const Netlist realized = RealizeKeyAsTies(locked.locked, locked.key);
  EXPECT_TRUE(realized.KeyInputs().empty());
  size_t hi = 0;
  size_t lo = 0;
  for (GateId g = 0; g < realized.NumGates(); ++g) {
    const Gate& gate = realized.gate(g);
    if (gate.HasFlag(kFlagTie) && gate.op == GateOp::kTieHi) ++hi;
    if (gate.HasFlag(kFlagTie) && gate.op == GateOp::kTieLo) ++lo;
  }
  size_t key_ones = 0;
  for (uint8_t b : locked.key) key_ones += b;
  EXPECT_EQ(hi, key_ones);
  EXPECT_EQ(lo, locked.key.size() - key_ones);
  // Realized netlist computes the original function outright.
  EXPECT_TRUE(RandomPatternsAgree(original, realized, 512, 20));
}

}  // namespace
}  // namespace splitlock::lock
