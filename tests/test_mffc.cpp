#include <gtest/gtest.h>

#include <algorithm>

#include "netlist/libcell.hpp"
#include "opt/mffc.hpp"

namespace splitlock {
namespace {

bool Contains(const std::vector<GateId>& v, GateId g) {
  return std::find(v.begin(), v.end(), g) != v.end();
}

TEST(Mffc, LinearChainWhollyContained) {
  Netlist nl("chain");
  const NetId a = nl.AddInput("a");
  const NetId x1 = nl.AddGate(GateOp::kInv, {a});
  const NetId x2 = nl.AddGate(GateOp::kBuf, {x1});
  const NetId x3 = nl.AddGate(GateOp::kInv, {x2});
  nl.AddOutput(x3, "y");
  const std::vector<GateId> cone = MffcOf(nl, nl.DriverOf(x3));
  EXPECT_EQ(cone.size(), 3u);
  EXPECT_TRUE(Contains(cone, nl.DriverOf(x1)));
  EXPECT_TRUE(Contains(cone, nl.DriverOf(x2)));
  EXPECT_TRUE(Contains(cone, nl.DriverOf(x3)));
}

TEST(Mffc, SharedFanoutExcluded) {
  Netlist nl("shared");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId shared = nl.AddGate(GateOp::kAnd, {a, b});
  const NetId x = nl.AddGate(GateOp::kInv, {shared});
  const NetId other = nl.AddGate(GateOp::kBuf, {shared});  // second fanout
  nl.AddOutput(x, "y1");
  nl.AddOutput(other, "y2");
  const std::vector<GateId> cone = MffcOf(nl, nl.DriverOf(x));
  // The shared AND escapes through `other`, so only the INV is in the cone.
  EXPECT_EQ(cone.size(), 1u);
  EXPECT_TRUE(Contains(cone, nl.DriverOf(x)));
}

TEST(Mffc, TreeWhollyContained) {
  Netlist nl("tree");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId c = nl.AddInput("c");
  const NetId d = nl.AddInput("d");
  const NetId l = nl.AddGate(GateOp::kAnd, {a, b});
  const NetId r = nl.AddGate(GateOp::kOr, {c, d});
  const NetId root = nl.AddGate(GateOp::kNand, {l, r});
  nl.AddOutput(root, "y");
  const std::vector<GateId> cone = MffcOf(nl, nl.DriverOf(root));
  EXPECT_EQ(cone.size(), 3u);
}

TEST(Mffc, MultiPinSameDriverCounted) {
  // root uses the same net twice; the driver is still dereferenced fully.
  Netlist nl("dup");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId x = nl.AddGate(GateOp::kAnd, {a, b});
  const NetId root = nl.AddGate(GateOp::kXor, {x, x});
  nl.AddOutput(root, "y");
  const std::vector<GateId> cone = MffcOf(nl, nl.DriverOf(root));
  EXPECT_EQ(cone.size(), 2u);
  EXPECT_TRUE(Contains(cone, nl.DriverOf(x)));
}

TEST(Mffc, SourcesAndDontTouchExcluded) {
  Netlist nl("dt");
  const NetId a = nl.AddInput("a");
  const NetId tie = nl.AddGate(GateOp::kTieHi, {});
  const NetId locked = nl.AddGate(GateOp::kInv, {a});
  nl.gate(nl.DriverOf(locked)).flags |= kFlagDontTouch;
  const NetId root = nl.AddGate(GateOp::kAnd, {locked, tie});
  nl.AddOutput(root, "y");
  const std::vector<GateId> cone = MffcOf(nl, nl.DriverOf(root));
  EXPECT_EQ(cone.size(), 1u);  // neither TIE nor don't-touch INV
  // A don't-touch root has no cone at all.
  EXPECT_TRUE(MffcOf(nl, nl.DriverOf(locked)).empty());
}

TEST(Mffc, AreaOfGatesMatchesLibrary) {
  Netlist nl("area");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId x = nl.AddGate(GateOp::kAnd, {a, b});
  const NetId root = nl.AddGate(GateOp::kInv, {x});
  nl.AddOutput(root, "y");
  const std::vector<GateId> cone = MffcOf(nl, nl.DriverOf(root));
  Gate and2{GateOp::kAnd, {0, 1}, 2, "g", 0, 1};
  Gate inv{GateOp::kInv, {0}, 1, "g", 0, 1};
  EXPECT_DOUBLE_EQ(AreaOfGates(nl, cone),
                   CellFor(and2).AreaUm2() + CellFor(inv).AreaUm2());
}

}  // namespace
}  // namespace splitlock
