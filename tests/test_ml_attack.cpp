#include <gtest/gtest.h>

#include "attack/metrics.hpp"
#include "attack/ml_attack.hpp"
#include "attack/proximity.hpp"
#include "circuits/random_circuit.hpp"
#include "core/flow.hpp"

namespace splitlock::attack {
namespace {

core::FlowResult SecureFlow(uint64_t seed, size_t key_bits = 32) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 12;
  spec.num_gates = 800;
  spec.seed = seed;
  spec.bias_cone_fraction = 0.15;
  const Netlist original = circuits::GenerateCircuit(spec);
  core::FlowOptions opts;
  opts.key_bits = key_bits;
  opts.seed = seed;
  opts.split_layer = 4;
  opts.placer_moves_per_cell = 25;
  return core::RunSecureFlow(original, opts);
}

TEST(MlAttack, ProducesCompleteAssignment) {
  const core::FlowResult flow = SecureFlow(1);
  const MlAttackResult r = RunMlAttack(flow.feol);
  ASSERT_EQ(r.assignment.size(), flow.feol.sink_stubs.size());
  for (NetId n : r.assignment) EXPECT_NE(n, kNullId);
  EXPECT_GT(r.training_positives, 100u);
}

TEST(MlAttack, LearnerConverges) {
  // The model must beat coin flipping on its own training distribution —
  // otherwise "the ML attack fails on key-nets" would be vacuous.
  const core::FlowResult flow = SecureFlow(2);
  const MlAttackResult r = RunMlAttack(flow.feol);
  EXPECT_GT(r.training_accuracy_percent, 60.0);
}

TEST(MlAttack, KeyNetsStayAtCoinFlipping) {
  // The paper's footnote-3 claim: learning-based attacks gain nothing on
  // the key because the secure flow leaves no learnable geometry.
  const core::FlowResult flow = SecureFlow(3);
  const MlAttackResult r = RunMlAttack(flow.feol);
  const CcrReport ccr = ComputeCcr(flow.feol, r.assignment);
  ASSERT_GT(ccr.key_connections, 0u);
  EXPECT_LT(ccr.key_physical_ccr_percent, 20.0);
  EXPECT_GT(ccr.key_logical_ccr_percent, 20.0);
  EXPECT_LT(ccr.key_logical_ccr_percent, 80.0);
}

TEST(MlAttack, PostprocessingFlagWorks) {
  const core::FlowResult flow = SecureFlow(4);
  MlAttackOptions no_pp;
  no_pp.postprocess_key_gates = false;
  const MlAttackResult with_pp = RunMlAttack(flow.feol);
  const MlAttackResult without_pp = RunMlAttack(flow.feol, no_pp);
  const Netlist& nl = *flow.feol.netlist;
  // With post-processing every key sink points at a TIE-like driver.
  for (size_t i = 0; i < flow.feol.sink_stubs.size(); ++i) {
    if (!IsKeyGateSink(flow.feol, flow.feol.sink_stubs[i])) continue;
    const GateOp op = nl.gate(nl.DriverOf(with_pp.assignment[i])).op;
    EXPECT_TRUE(op == GateOp::kTieHi || op == GateOp::kTieLo);
  }
  // Without it, at least the assignment is still complete.
  for (NetId n : without_pp.assignment) EXPECT_NE(n, kNullId);
}

TEST(MlAttack, DeterministicForFixedSeed) {
  const core::FlowResult flow = SecureFlow(5);
  const MlAttackResult a = RunMlAttack(flow.feol);
  const MlAttackResult b = RunMlAttack(flow.feol);
  EXPECT_EQ(a.assignment, b.assignment);
}

}  // namespace
}  // namespace splitlock::attack
