#include <gtest/gtest.h>

#include "netlist/libcell.hpp"
#include "netlist/netlist.hpp"

namespace splitlock {
namespace {

// a, b -> AND -> INV -> out
Netlist MakeTiny() {
  Netlist nl("tiny");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId n1 = nl.AddGate(GateOp::kAnd, {a, b}, "n1");
  const NetId n2 = nl.AddGate(GateOp::kInv, {n1}, "n2");
  nl.AddOutput(n2, "out");
  return nl;
}

TEST(Netlist, BuildAndValidate) {
  const Netlist nl = MakeTiny();
  EXPECT_EQ(nl.Validate(), "");
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.NumLogicGates(), 2u);
}

TEST(Netlist, DriverAndSinksConsistent) {
  const Netlist nl = MakeTiny();
  const NetId a = nl.gate(nl.inputs()[0]).out;
  ASSERT_EQ(nl.net(a).sinks.size(), 1u);
  const Pin p = nl.net(a).sinks[0];
  EXPECT_EQ(nl.gate(p.gate).op, GateOp::kAnd);
  EXPECT_EQ(nl.gate(p.gate).fanins[p.index], a);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  const Netlist nl = MakeTiny();
  const std::vector<GateId> order = nl.TopoOrder();
  std::vector<size_t> pos(nl.NumGates());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    for (NetId n : nl.gate(g).fanins) {
      EXPECT_LT(pos[nl.DriverOf(n)], pos[g]);
    }
  }
}

TEST(Netlist, ReplaceFaninRewires) {
  Netlist nl = MakeTiny();
  const NetId a = nl.gate(nl.inputs()[0]).out;
  const NetId b = nl.gate(nl.inputs()[1]).out;
  const GateId and_gate = nl.net(a).sinks[0].gate;
  nl.ReplaceFanin(and_gate, 0, b);
  EXPECT_EQ(nl.gate(and_gate).fanins[0], b);
  EXPECT_TRUE(nl.net(a).sinks.empty());
  EXPECT_EQ(nl.net(b).sinks.size(), 2u);
  EXPECT_EQ(nl.Validate(), "");
}

TEST(Netlist, ReplaceAllUsesMovesOutputs) {
  Netlist nl = MakeTiny();
  const NetId a = nl.gate(nl.inputs()[0]).out;
  const GateId and_gate = nl.net(a).sinks[0].gate;
  const NetId and_out = nl.gate(and_gate).out;
  nl.ReplaceAllUses(and_out, a);
  EXPECT_TRUE(nl.net(and_out).sinks.empty());
  EXPECT_EQ(nl.Validate(), "");
  // The INV now consumes `a` directly.
  const GateId inv = nl.outputs()[0];
  const NetId inv_in = nl.gate(nl.DriverOf(nl.gate(inv).fanins[0])).fanins[0];
  EXPECT_EQ(inv_in, a);
}

TEST(Netlist, DeleteGateDetaches) {
  Netlist nl = MakeTiny();
  const NetId a = nl.gate(nl.inputs()[0]).out;
  const GateId and_gate = nl.net(a).sinks[0].gate;
  const NetId and_out = nl.gate(and_gate).out;
  // Detach the AND's consumer first.
  nl.ReplaceAllUses(and_out, a);
  nl.DeleteGate(and_gate);
  EXPECT_EQ(nl.gate(and_gate).op, GateOp::kDeleted);
  EXPECT_EQ(nl.Validate(), "");
  EXPECT_EQ(nl.NumLogicGates(), 1u);
}

TEST(Netlist, MorphGateChangesArity) {
  Netlist nl("m");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId c = nl.AddInput("c");
  const NetId o = nl.AddGate(GateOp::kAnd, {a, b, c});
  nl.AddOutput(o, "o");
  const GateId g = nl.DriverOf(o);
  nl.MorphGate(g, GateOp::kAnd, std::array<NetId, 2>{a, b});
  EXPECT_EQ(nl.gate(g).fanins.size(), 2u);
  EXPECT_TRUE(nl.net(c).sinks.empty());
  EXPECT_EQ(nl.Validate(), "");
}

TEST(Netlist, CompactedDropsDeleted) {
  Netlist nl = MakeTiny();
  const NetId a = nl.gate(nl.inputs()[0]).out;
  const GateId and_gate = nl.net(a).sinks[0].gate;
  const NetId and_out = nl.gate(and_gate).out;
  nl.ReplaceAllUses(and_out, a);
  nl.DeleteGate(and_gate);
  const Netlist compact = nl.Compacted();
  EXPECT_EQ(compact.Validate(), "");
  EXPECT_EQ(compact.NumLogicGates(), 1u);
  EXPECT_EQ(compact.inputs().size(), 2u);
  EXPECT_EQ(compact.outputs().size(), 1u);
}

TEST(Netlist, CompactedPreservesKeyInputOrder) {
  Netlist nl("keys");
  const NetId a = nl.AddInput("a");
  NetId acc = a;
  std::vector<std::string> names;
  for (int i = 0; i < 5; ++i) {
    const NetId k = nl.AddGate(GateOp::kKeyIn, {}, "key_" + std::to_string(i));
    nl.gate(nl.DriverOf(k)).name = "key_" + std::to_string(i);
    names.push_back("key_" + std::to_string(i));
    acc = nl.AddGate(GateOp::kXor, {acc, k});
  }
  nl.AddOutput(acc, "o");
  const Netlist compact = nl.Compacted();
  const std::vector<GateId> keys = compact.KeyInputs();
  ASSERT_EQ(keys.size(), 5u);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(compact.gate(keys[i]).name, names[i]);
  }
}

TEST(Netlist, EvalGateWordTruthTables) {
  const uint64_t a = 0b1100;
  const uint64_t b = 0b1010;
  EXPECT_EQ(EvalGateWord(GateOp::kAnd, std::array<uint64_t, 2>{a, b}) & 0xF,
            0b1000u);
  EXPECT_EQ(EvalGateWord(GateOp::kOr, std::array<uint64_t, 2>{a, b}) & 0xF,
            0b1110u);
  EXPECT_EQ(EvalGateWord(GateOp::kNand, std::array<uint64_t, 2>{a, b}) & 0xF,
            0b0111u);
  EXPECT_EQ(EvalGateWord(GateOp::kNor, std::array<uint64_t, 2>{a, b}) & 0xF,
            0b0001u);
  EXPECT_EQ(EvalGateWord(GateOp::kXor, std::array<uint64_t, 2>{a, b}) & 0xF,
            0b0110u);
  EXPECT_EQ(EvalGateWord(GateOp::kXnor, std::array<uint64_t, 2>{a, b}) & 0xF,
            0b1001u);
  EXPECT_EQ(EvalGateWord(GateOp::kInv, std::array<uint64_t, 1>{a}) & 0xF,
            0b0011u);
  // MUX: {sel, a, b} -> sel ? b : a
  const uint64_t sel = 0b1010;
  EXPECT_EQ(
      EvalGateWord(GateOp::kMux, std::array<uint64_t, 3>{sel, a, b}) & 0xF,
      ((sel & b) | (~sel & a)) & 0xF);
}

TEST(LibCell, AreasAndDrives) {
  Gate inv{GateOp::kInv, {0}, 1, "g", 0, 1};
  const LibCell& x1 = CellFor(inv);
  inv.drive = 2;
  const LibCell& x2 = CellFor(inv);
  inv.drive = 4;
  const LibCell& x4 = CellFor(inv);
  EXPECT_LT(x1.AreaUm2(), x2.AreaUm2());
  EXPECT_LT(x2.AreaUm2(), x4.AreaUm2());
  EXPECT_GT(x1.drive_res_kohm, x2.drive_res_kohm);
  EXPECT_GT(x2.drive_res_kohm, x4.drive_res_kohm);
  EXPECT_LT(x1.max_load_ff, x4.max_load_ff);
}

TEST(LibCell, ArityVariantsDiffer) {
  Gate nand2{GateOp::kNand, {0, 1}, 2, "g", 0, 1};
  Gate nand4{GateOp::kNand, {0, 1, 2, 3}, 4, "g", 0, 1};
  EXPECT_LT(CellFor(nand2).AreaUm2(), CellFor(nand4).AreaUm2());
  EXPECT_EQ(CellFor(nand2).name, "NAND2_X1");
  EXPECT_EQ(CellFor(nand4).name, "NAND4_X1");
}

TEST(LibCell, TotalAreaCountsPhysicalOnly) {
  const Netlist nl = MakeTiny();
  const double area = TotalCellArea(nl);
  Gate and2{GateOp::kAnd, {0, 1}, 2, "g", 0, 1};
  Gate inv{GateOp::kInv, {0}, 1, "g", 0, 1};
  EXPECT_DOUBLE_EQ(area, CellFor(and2).AreaUm2() + CellFor(inv).AreaUm2());
}

}  // namespace
}  // namespace splitlock
