// The observability layer: registry semantics, histogram bucketing, trace
// span export, and — most importantly — the determinism contracts the
// instrumentation must keep: count-class metrics bit-identical at any
// thread count, canonical records byte-identical with tracing on or off,
// and stage timings that sum to no more than the job's total.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "attack/engine.hpp"
#include "circuits/random_circuit.hpp"
#include "core/campaign.hpp"
#include "core/flow.hpp"
#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/result_store.hpp"
#include "util/json.hpp"

namespace splitlock::obs {
namespace {

namespace fs = std::filesystem;

// --- Registry ---------------------------------------------------------------

TEST(Registry, SnapshotIsNameOrderedAndClassSegregated) {
  Registry reg;
  // Registered deliberately out of name order; snapshots sort by name.
  Counter* b = reg.RegisterCounter("test.b.count");
  Counter* a = reg.RegisterCounter("test.a.count");
  Counter* s = reg.RegisterCounter("test.c.sched", MetricClass::kSched);
  Gauge* g = reg.RegisterGauge("test.d.gauge");
  TimeMetric* t = reg.RegisterTime("test.e.time");
  Histogram* h = reg.RegisterHistogram("test.f.hist", {4, 16});

  a->Add(1);
  b->Add(2);
  s->Add(3);
  g->Set(9);
  g->Set(5);  // high-water stays 9
  t->AddSeconds(0.25);
  h->Observe(10);

  const MetricsSnapshot snap = reg.Snapshot();
  // kCount counters only in `counts`, in name order.
  std::vector<std::string> count_names;
  for (const auto& [name, value] : snap.counts) count_names.push_back(name);
  EXPECT_EQ(count_names,
            (std::vector<std::string>{"test.a.count", "test.b.count"}));
  EXPECT_EQ(snap.counts.at("test.a.count"), 1u);
  EXPECT_EQ(snap.counts.at("test.b.count"), 2u);
  // Sched section: sched-class counters plus gauge high-water marks.
  EXPECT_EQ(snap.sched.at("test.c.sched"), 3u);
  EXPECT_EQ(snap.sched.at("test.d.gauge"), 9u);
  EXPECT_EQ(snap.counts.count("test.c.sched"), 0u);
  // Times segregated from counts entirely.
  EXPECT_NEAR(snap.times.at("test.e.time"), 0.25, 1e-9);
  EXPECT_EQ(snap.counts.count("test.e.time"), 0u);
  // Histogram rides the deterministic section.
  ASSERT_EQ(snap.histograms.count("test.f.hist"), 1u);
  EXPECT_EQ(snap.histograms.at("test.f.hist").total, 1u);

  // CountsJson covers only the deterministic sections; ToJson adds the
  // rest. Name order makes both strings reproducible.
  const std::string counts_json = snap.CountsJson();
  EXPECT_NE(counts_json.find("\"test.a.count\":1"), std::string::npos);
  EXPECT_EQ(counts_json.find("test.c.sched"), std::string::npos);
  EXPECT_EQ(counts_json.find("test.e.time"), std::string::npos);
  const std::string full_json = snap.ToJson();
  EXPECT_NE(full_json.find("\"sched\""), std::string::npos);
  EXPECT_NE(full_json.find("\"times\""), std::string::npos);
  EXPECT_TRUE(util::ParseJson(full_json).has_value());
  EXPECT_TRUE(util::ParseJson(counts_json).has_value());
}

TEST(Registry, DuplicateRegistrationThrows) {
  Registry reg;
  // Non-literal names keep the lint obs-metric-once collector (which
  // audits literal call sites against the process-wide registry) out of
  // this deliberately-duplicating test.
  const std::string name = "test.dup.metric";
  reg.RegisterCounter(name);
  EXPECT_THROW(reg.RegisterCounter(name), std::logic_error);
  // Cross-kind duplicates are rejected too.
  EXPECT_THROW(reg.RegisterGauge(name), std::logic_error);
  EXPECT_THROW(reg.RegisterHistogram(name, {1, 2}), std::logic_error);
  EXPECT_THROW(reg.RegisterTime(name), std::logic_error);
}

// --- Histogram --------------------------------------------------------------

TEST(HistogramTest, BucketEdgesAreInclusiveWithOverflow) {
  Histogram h({2, 4, 8});
  for (const uint64_t v : {1, 2, 3, 4, 8, 9}) h.Observe(v);
  // v <= 2 -> bucket 0; v <= 4 -> bucket 1; v <= 8 -> bucket 2; else
  // overflow.
  EXPECT_EQ(h.BucketCounts(), (std::vector<uint64_t>{2, 2, 1, 1}));
  EXPECT_EQ(h.Total(), 6u);
  EXPECT_EQ(h.Sum(), 27u);
  h.ObserveN(3, 10);
  EXPECT_EQ(h.BucketCounts(), (std::vector<uint64_t>{2, 12, 1, 1}));
  EXPECT_EQ(h.Total(), 16u);
  EXPECT_EQ(h.Sum(), 57u);
}

TEST(HistogramTest, Pow2EdgesSpanLoToHi) {
  EXPECT_EQ(Pow2Edges(1, 8), (std::vector<uint64_t>{1, 2, 4, 8}));
  // hi lands between powers: hi itself becomes the final edge.
  EXPECT_EQ(Pow2Edges(64, 100), (std::vector<uint64_t>{64, 100}));
  EXPECT_EQ(Pow2Edges(16, 16), (std::vector<uint64_t>{16}));
}

TEST(MetricsSnapshotTest, DeltaSubtractsPerName) {
  Registry reg;
  Counter* a = reg.RegisterCounter("test.delta.a");
  Histogram* h = reg.RegisterHistogram("test.delta.h", {4});
  a->Add(3);
  h->Observe(2);
  const MetricsSnapshot before = reg.Snapshot();
  a->Add(5);
  h->Observe(10);
  const MetricsSnapshot after = reg.Snapshot();
  const MetricsSnapshot delta = MetricsSnapshot::Delta(before, after);
  EXPECT_EQ(delta.counts.at("test.delta.a"), 5u);
  EXPECT_EQ(delta.histograms.at("test.delta.h").total, 1u);
  EXPECT_EQ(delta.histograms.at("test.delta.h").buckets,
            (std::vector<uint64_t>{0, 1}));
}

TEST(MetricsSnapshotTest, FlatCountsJsonFiltersByPrefix) {
  Registry reg;
  // Local Registry, but the obs-metric-once lint audit is lexical and
  // cross-file: keep these literals distinct from any real registration.
  reg.RegisterCounter("store.test.hits")->Add(2);
  reg.RegisterCounter("exec.pool.test_only")->Add(7);
  reg.RegisterHistogram("store.test.bytes_read", {64})->Observe(10);
  const std::string flat = reg.Snapshot().FlatCountsJson("store.");
  EXPECT_NE(flat.find("\"store.test.hits\":2"), std::string::npos);
  EXPECT_NE(flat.find("\"store.test.bytes_read.total\":1"),
            std::string::npos);
  EXPECT_NE(flat.find("\"store.test.bytes_read.sum\":10"),
            std::string::npos);
  EXPECT_EQ(flat.find("exec.pool"), std::string::npos);
  EXPECT_TRUE(util::ParseJson(flat).has_value());
}

// --- Trace export -----------------------------------------------------------

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Trace, ExportIsWellFormedNestedAndThreadAttributed) {
  const std::string path =
      (fs::temp_directory_path() / "splitlock_obs_trace_test.json").string();
  Tracer::Instance().RegisterCurrentThread("main");
  Tracer::Instance().Start(path);
  {
    Span outer("test.outer");
    {
      Span inner("test.inner", 7);
    }
  }
  // Pool work so worker tracks and exec.task spans appear.
  std::vector<uint64_t> sink(256, 0);
  exec::ParallelFor(sink.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) sink[i] = i * i;
  });
  ASSERT_TRUE(Tracer::Instance().ExportAndStop());

  const std::optional<util::JsonValue> doc =
      util::ParseJson(ReadWholeFile(path));
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->IsObject());
  EXPECT_EQ(doc->GetString("displayTimeUnit", ""), "ms");
  const util::JsonValue* events = doc->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());

  double main_tid = -1;
  bool saw_exec_task = false;
  const util::JsonValue* outer_ev = nullptr;
  const util::JsonValue* inner_ev = nullptr;
  for (const util::JsonValue& e : events->array) {
    const std::string ph = e.GetString("ph", "");
    if (ph == "M") {
      const util::JsonValue* args = e.Get("args");
      if (args != nullptr && args->GetString("name", "") == "main") {
        main_tid = e.GetNumber("tid", -1);
      }
      continue;
    }
    ASSERT_EQ(ph, "X");  // only metadata + complete events are emitted
    const std::string name = e.GetString("name", "");
    if (name == "exec.task") saw_exec_task = true;
    if (name == "test.outer") outer_ev = &e;
    if (name == "test.inner") inner_ev = &e;
  }
  ASSERT_GE(main_tid, 0.0);
  EXPECT_TRUE(saw_exec_task);
  ASSERT_NE(outer_ev, nullptr);
  ASSERT_NE(inner_ev, nullptr);
  // Both spans ran on the main thread's track...
  EXPECT_EQ(outer_ev->GetNumber("tid", -1), main_tid);
  EXPECT_EQ(inner_ev->GetNumber("tid", -2), main_tid);
  // ...and nest by (ts, dur) containment, which is how Chrome renders
  // parent/child slices.
  const double o_ts = outer_ev->GetNumber("ts", 0);
  const double o_end = o_ts + outer_ev->GetNumber("dur", 0);
  const double i_ts = inner_ev->GetNumber("ts", 0);
  const double i_end = i_ts + inner_ev->GetNumber("dur", 0);
  EXPECT_GE(i_ts, o_ts);
  EXPECT_LE(i_end, o_end);
  // The integer span argument rides through as args.v.
  const util::JsonValue* args = inner_ev->Get("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->GetNumber("v", -1), 7.0);
  fs::remove(path);
}

TEST(Trace, DisabledSpansRecordNothingAndExportFails) {
  // Never started (or already stopped by a previous test): spans are
  // inert and ExportAndStop reports there is nothing to export.
  {
    Span span("test.should.not.appear");
  }
  EXPECT_FALSE(Tracer::Instance().ExportAndStop());
}

// --- Determinism contracts --------------------------------------------------

Netlist TestCircuit(uint64_t seed, size_t gates) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 12;
  spec.num_gates = gates;
  spec.seed = seed;
  spec.bias_cone_fraction = 0.15;
  return circuits::GenerateCircuit(spec);
}

core::FlowOptions SmallOptions(uint64_t seed) {
  core::FlowOptions opts;
  opts.key_bits = 16;
  opts.seed = seed;
  opts.split_layer = 4;
  opts.placer_moves_per_cell = 15;
  return opts;
}

// A workload touching several instrumented subsystems: secure flow
// (exec pool, flow stages), a sharded fault sweep (atpg tiles) and a SAT
// attack (rounds, DIPs, oracle queries, conflicts, batch histogram).
// Returns the deterministic-section delta this workload caused.
std::string CountDeltaJson(size_t threads) {
  exec::ThreadPool::SetDefaultThreadCount(threads);
  const MetricsSnapshot before = Registry::Instance().Snapshot();

  const Netlist original = TestCircuit(11, 260);
  const core::FlowResult flow =
      core::RunSecureFlow(original, SmallOptions(11));
  const std::vector<atpg::Fault> faults =
      atpg::CollapseFaults(original, atpg::EnumerateStemFaults(original));
  atpg::FaultCoverage(original, faults, 512, 2019);
  attack::AttackContext ctx;
  ctx.feol = &flow.feol;
  ctx.locked = &flow.lock.locked;
  ctx.oracle = &original;
  ctx.correct_key = flow.lock.key;
  ctx.seed = 11;
  attack::RunAttack(ctx, "sat");

  const MetricsSnapshot after = Registry::Instance().Snapshot();
  return MetricsSnapshot::Delta(before, after).CountsJson();
}

TEST(Determinism, CountMetricsBitIdenticalAcrossThreadCounts) {
  const std::string at1 = CountDeltaJson(1);
  const std::string at2 = CountDeltaJson(2);
  const std::string at8 = CountDeltaJson(8);
  exec::ThreadPool::SetDefaultThreadCount(0);  // restore configured default
  EXPECT_EQ(at1, at2);
  EXPECT_EQ(at1, at8);
  // Sanity: the workload actually moved the deterministic counters.
  EXPECT_NE(at1.find("exec.pool.tasks_run"), std::string::npos);
  EXPECT_NE(at1.find("attack.sat.rounds"), std::string::npos);
  EXPECT_NE(at1.find("atpg.sweep.tiles"), std::string::npos);
}

// Fresh per-test store directory under the system temp dir.
std::string FreshStoreDir(const std::string& tag) {
  const std::string dir =
      (fs::temp_directory_path() / ("splitlock_obs_test_" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

core::CampaignJob SmallJob(uint64_t seed) {
  core::CampaignJob job;
  job.name = "obs-smoke";
  job.make_netlist = [seed] { return TestCircuit(seed, 260); };
  job.flow = SmallOptions(seed);
  job.attacks = {attack::AttackConfig{.engine = "proximity"}};
  job.cache_id = "test/obs-smoke";
  job.cache_scale = "1";
  return job;
}

TEST(StageTimes, StageSumWithinTotalColdAndWarm) {
  const std::string dir = FreshStoreDir("stage_times");
  store::ResultStore store(dir);
  core::CampaignOptions options;
  options.score_patterns = 256;
  options.store = &store;
  const core::CampaignRunner runner(options);

  // Cold: computes, saves artifacts. Stage intervals are non-overlapping
  // sub-intervals of the job, so their sum can never exceed the total.
  const core::CampaignOutcome cold = runner.RunOne(SmallJob(21));
  ASSERT_TRUE(cold.ok) << cold.error;
  ASSERT_FALSE(cold.from_store);
  EXPECT_GT(cold.flow.times.total_s, 0.0);
  EXPECT_GT(cold.flow.times.artifact_save_s, 0.0);
  EXPECT_LE(cold.flow.times.StageSumS(), cold.flow.times.total_s + 1e-6);

  // Warm: force_compute skips the record shortcut but replays from the
  // artifact tier. artifact_load_s covers lookup + decode only; the
  // replayed analysis reports under sta_s/analyze_s — double-reporting
  // the warm window used to break this inequality.
  core::CampaignJob warm_job = SmallJob(21);
  warm_job.force_compute = true;
  const core::CampaignOutcome warm = runner.RunOne(warm_job);
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_GT(warm.flow.times.artifact_load_s, 0.0);
  EXPECT_EQ(warm.flow.times.place_s, 0.0);  // replayed, not recomputed
  EXPECT_LE(warm.flow.times.StageSumS(), warm.flow.times.total_s + 1e-6);

  // The two paths agree on the canonical record bit-for-bit.
  EXPECT_EQ(cold.record.ToJson(false), warm.record.ToJson(false));
  fs::remove_all(dir);
}

TEST(Determinism, TracingDoesNotPerturbCanonicalRecords) {
  const core::CampaignRunner runner(
      core::CampaignOptions{.score_patterns = 256});
  core::CampaignJob job = SmallJob(31);
  job.cache_id.clear();  // no store: both runs compute

  const core::CampaignOutcome untraced = runner.RunOne(job);
  ASSERT_TRUE(untraced.ok) << untraced.error;

  const std::string path =
      (fs::temp_directory_path() / "splitlock_obs_campaign_trace.json")
          .string();
  Tracer::Instance().Start(path);
  const core::CampaignOutcome traced = runner.RunOne(job);
  ASSERT_TRUE(Tracer::Instance().ExportAndStop());
  ASSERT_TRUE(traced.ok) << traced.error;

  // Collection must never alter results: byte-identical canonical records.
  EXPECT_EQ(untraced.record.ToJson(false), traced.record.ToJson(false));

  // And the trace of the traced run carries the campaign + flow spans.
  const std::optional<util::JsonValue> doc =
      util::ParseJson(ReadWholeFile(path));
  ASSERT_TRUE(doc.has_value());
  std::set<std::string> names;
  const util::JsonValue* events = doc->Get("traceEvents");
  ASSERT_NE(events, nullptr);
  for (const util::JsonValue& e : events->array) {
    if (e.GetString("ph", "") == "X") names.insert(e.GetString("name", ""));
  }
  EXPECT_TRUE(names.count("campaign.job"));
  EXPECT_TRUE(names.count("flow.lock"));
  EXPECT_TRUE(names.count("flow.place"));
  EXPECT_TRUE(names.count("flow.route"));
  EXPECT_TRUE(names.count("flow.lift"));
  EXPECT_TRUE(names.count("flow.sta"));
  EXPECT_TRUE(names.count("attack.engine"));
  fs::remove(path);
}

}  // namespace
}  // namespace splitlock::obs
