#include <gtest/gtest.h>

#include "circuits/random_circuit.hpp"
#include "lec/lec.hpp"
#include "netlist/netlist.hpp"
#include "opt/optimizer.hpp"
#include "sim/metrics.hpp"

namespace splitlock {
namespace {

TEST(ConstantPropagate, AndWithZeroFolds) {
  Netlist nl("f");
  const NetId a = nl.AddInput("a");
  const NetId zero = nl.AddGate(GateOp::kConst0, {});
  const NetId y = nl.AddGate(GateOp::kAnd, {a, zero});
  nl.AddOutput(y, "y");
  const OptStats stats = ConstantPropagate(nl);
  EXPECT_GE(stats.folded, 1u);
  // The PO must now observe constant 0.
  const GateId po = nl.outputs()[0];
  const GateId driver = nl.DriverOf(nl.gate(po).fanins[0]);
  EXPECT_EQ(nl.gate(driver).op, GateOp::kConst0);
}

TEST(ConstantPropagate, AndWithOneShrinks) {
  Netlist nl("f");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId one = nl.AddGate(GateOp::kConst1, {});
  const NetId y = nl.AddGate(GateOp::kAnd, {a, b, one});
  nl.AddOutput(y, "y");
  ConstantPropagate(nl);
  const GateId g = nl.DriverOf(y);
  EXPECT_EQ(nl.gate(g).op, GateOp::kAnd);
  EXPECT_EQ(nl.gate(g).fanins.size(), 2u);
}

TEST(ConstantPropagate, XorWithConstBecomesInv) {
  Netlist nl("f");
  const NetId a = nl.AddInput("a");
  const NetId one = nl.AddGate(GateOp::kConst1, {});
  const NetId y = nl.AddGate(GateOp::kXor, {a, one});
  nl.AddOutput(y, "y");
  ConstantPropagate(nl);
  EXPECT_EQ(nl.gate(nl.DriverOf(y)).op, GateOp::kInv);
}

TEST(ConstantPropagate, MuxConstSelect) {
  Netlist nl("f");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId one = nl.AddGate(GateOp::kConst1, {});
  const NetId y = nl.AddGate(GateOp::kMux, {one, a, b});  // sel=1 -> b
  nl.AddOutput(y, "y");
  ConstantPropagate(nl);
  const Gate& g = nl.gate(nl.DriverOf(y));
  ASSERT_EQ(g.op, GateOp::kBuf);
  EXPECT_EQ(g.fanins[0], b);
}

TEST(ConstantPropagate, UnflaggedTieFoldsButDontTouchSurvives) {
  Netlist nl("f");
  const NetId a = nl.AddInput("a");
  const NetId tie_free = nl.AddGate(GateOp::kTieHi, {});
  const NetId tie_locked = nl.AddGate(GateOp::kTieHi, {});
  nl.gate(nl.DriverOf(tie_locked)).flags |= kFlagDontTouch | kFlagTie;
  const NetId y1 = nl.AddGate(GateOp::kAnd, {a, tie_free});
  const NetId y2 = nl.AddGate(GateOp::kXnor, {a, tie_locked});
  nl.gate(nl.DriverOf(y2)).flags |= kFlagDontTouch | kFlagKeyGate;
  nl.AddOutput(y1, "y1");
  nl.AddOutput(y2, "y2");
  OptimizeArea(nl);
  // y1's AND folded away; y2's key-gate + TIE untouched.
  EXPECT_EQ(nl.DriverOf(nl.gate(nl.outputs()[0]).fanins[0]),
            nl.DriverOf(a));
  EXPECT_EQ(nl.gate(nl.DriverOf(y2)).op, GateOp::kXnor);
  EXPECT_EQ(nl.gate(nl.DriverOf(tie_locked)).op, GateOp::kTieHi);
}

TEST(SimplifyLocal, BufBypassAndDoubleInv) {
  Netlist nl("f");
  const NetId a = nl.AddInput("a");
  const NetId b1 = nl.AddGate(GateOp::kBuf, {a});
  const NetId i1 = nl.AddGate(GateOp::kInv, {b1});
  const NetId i2 = nl.AddGate(GateOp::kInv, {i1});
  nl.AddOutput(i2, "y");
  SimplifyLocal(nl);
  SweepDeadLogic(nl);
  // Output observes `a` directly.
  EXPECT_EQ(nl.gate(nl.outputs()[0]).fanins[0], a);
  EXPECT_EQ(nl.NumLogicGates(), 0u);
}

TEST(SimplifyLocal, ComplementPairAnnihilates) {
  Netlist nl("f");
  const NetId a = nl.AddInput("a");
  const NetId na = nl.AddGate(GateOp::kInv, {a});
  const NetId y1 = nl.AddGate(GateOp::kAnd, {a, na});  // = 0
  const NetId y2 = nl.AddGate(GateOp::kOr, {a, na});   // = 1
  nl.AddOutput(y1, "y1");
  nl.AddOutput(y2, "y2");
  OptimizeArea(nl);
  EXPECT_EQ(nl.gate(nl.DriverOf(nl.gate(nl.outputs()[0]).fanins[0])).op,
            GateOp::kConst0);
  EXPECT_EQ(nl.gate(nl.DriverOf(nl.gate(nl.outputs()[1]).fanins[0])).op,
            GateOp::kConst1);
}

TEST(SimplifyLocal, DuplicateFaninCollapses) {
  Netlist nl("f");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId y = nl.AddGate(GateOp::kAnd, {a, a, b});
  nl.AddOutput(y, "y");
  SimplifyLocal(nl);
  EXPECT_EQ(nl.gate(nl.DriverOf(y)).fanins.size(), 2u);
}

TEST(StructuralHash, MergesDuplicates) {
  Netlist nl("f");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId x1 = nl.AddGate(GateOp::kAnd, {a, b});
  const NetId x2 = nl.AddGate(GateOp::kAnd, {b, a});  // commutative dup
  const NetId y = nl.AddGate(GateOp::kXor, {x1, x2});
  nl.AddOutput(y, "y");
  const OptStats stats = StructuralHash(nl);
  EXPECT_EQ(stats.merged, 1u);
  // XOR(x, x) after merge; SimplifyLocal turns it into const 0.
  SimplifyLocal(nl);
  EXPECT_EQ(nl.gate(nl.DriverOf(nl.gate(nl.outputs()[0]).fanins[0])).op,
            GateOp::kConst0);
}

TEST(SweepDeadLogic, RemovesUnobservedCone) {
  Netlist nl("f");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId dead1 = nl.AddGate(GateOp::kAnd, {a, b});
  nl.AddGate(GateOp::kInv, {dead1});  // dead cone of two gates
  nl.AddOutput(a, "y");
  const OptStats stats = SweepDeadLogic(nl);
  EXPECT_EQ(stats.swept, 2u);
  EXPECT_EQ(nl.NumLogicGates(), 0u);
}

TEST(SweepDeadLogic, KeyInputsSurvive) {
  Netlist nl("f");
  const NetId a = nl.AddInput("a");
  nl.AddGate(GateOp::kKeyIn, {}, "key_0");  // deliberately dangling
  nl.AddOutput(a, "y");
  SweepDeadLogic(nl);
  EXPECT_EQ(nl.KeyInputs().size(), 1u);
}

// Property: OptimizeArea never changes functionality and never grows area.
class OptimizeAreaProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizeAreaProperty, PreservesFunctionAndShrinks) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 14;
  spec.num_outputs = 7;
  spec.num_gates = 260;
  spec.seed = GetParam();
  const Netlist original = circuits::GenerateCircuit(spec);
  Netlist optimized = original;
  OptimizeArea(optimized);
  EXPECT_EQ(optimized.Validate(), "");
  EXPECT_LE(optimized.NumLogicGates(), original.NumLogicGates());
  EXPECT_TRUE(RandomPatternsAgree(original, optimized, 1024, spec.seed));
  const LecResult lec = CheckEquivalence(original, optimized);
  EXPECT_TRUE(lec.proven);
  EXPECT_TRUE(lec.equivalent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeAreaProperty,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace splitlock
