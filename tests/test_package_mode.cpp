// Tests for the paper's future-work proposal (Sec. V): a trusted packaging
// facility replaces the trusted BEOL fab — key-nets run to I/O pads on the
// top metals and the key is tied to fixed logic in the package.
#include <gtest/gtest.h>

#include "attack/ideal.hpp"
#include "attack/metrics.hpp"
#include "attack/proximity.hpp"
#include "circuits/random_circuit.hpp"
#include "core/flow.hpp"
#include "phys/router.hpp"

namespace splitlock::core {
namespace {

Netlist TestCircuit(uint64_t seed) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 24;
  spec.num_outputs = 12;
  spec.num_gates = 700;
  spec.seed = seed;
  spec.bias_cone_fraction = 0.15;
  return circuits::GenerateCircuit(spec);
}

FlowOptions PackageOptions(uint64_t seed) {
  FlowOptions opts;
  opts.key_bits = 32;
  opts.seed = seed;
  opts.split_layer = 4;
  opts.package_mode = true;
  opts.placer_moves_per_cell = 25;
  return opts;
}

TEST(PackageMode, KeyInputsBecomeBoundaryPads) {
  const Netlist original = TestCircuit(1);
  const FlowResult flow = RunSecureFlow(original, PackageOptions(1));
  const Netlist& nl = *flow.physical.netlist;
  const phys::Layout& layout = *flow.physical.layout;
  const std::vector<GateId> keys = nl.KeyInputs();
  ASSERT_EQ(keys.size(), 32u);  // kKeyIn survives (no TIE realization)
  for (GateId k : keys) {
    EXPECT_TRUE(layout.placed[k]);
    EXPECT_TRUE(layout.fixed[k]);
    const Point p = layout.position[k];
    const bool on_edge = p.x == layout.die.lo.x || p.x == layout.die.hi.x ||
                         p.y == layout.die.lo.y || p.y == layout.die.hi.y;
    EXPECT_TRUE(on_edge) << "key pad not on the boundary";
  }
}

TEST(PackageMode, KeyNetsRideTopMetals) {
  const Netlist original = TestCircuit(2);
  const FlowResult flow = RunSecureFlow(original, PackageOptions(2));
  const Netlist& nl = *flow.physical.netlist;
  const phys::Layout& layout = *flow.physical.layout;
  const int top_pair_low = layout.tech.NumLayers() - 1;
  for (NetId kn : phys::KeyNetsOf(nl)) {
    for (const phys::ConnRoute& conn : layout.routes[kn].conns) {
      for (const phys::Segment& s : conn.segments) {
        EXPECT_GE(s.layer, top_pair_low);
      }
    }
  }
}

TEST(PackageMode, KeyNetsBrokenAtAnySplit) {
  const Netlist original = TestCircuit(3);
  for (int split : {4, 6}) {
    FlowOptions opts = PackageOptions(3);
    opts.split_layer = split;
    const FlowResult flow = RunSecureFlow(original, opts);
    for (NetId kn : phys::KeyNetsOf(*flow.physical.netlist)) {
      EXPECT_TRUE(flow.feol.net_broken[kn]);
    }
  }
}

TEST(PackageMode, ProximityAttackGainsNothing) {
  const Netlist original = TestCircuit(4);
  const FlowResult flow = RunSecureFlow(original, PackageOptions(4));
  const attack::ProximityResult atk = attack::RunProximityAttack(flow.feol);
  const attack::CcrReport ccr = attack::ComputeCcr(flow.feol, atk.assignment);
  ASSERT_GT(ccr.key_connections, 0u);
  // The pads carry no on-die value at all; physical recovery of the exact
  // pad is the only thing scoreable, and it stays near 1/#pads.
  EXPECT_LT(ccr.key_physical_ccr_percent, 25.0);
}

TEST(PackageMode, RandomPadGuessingKeepsOerTotal) {
  // Functional security is identical to the BEOL case: guessing the pad
  // values is guessing the key (the ideal-attack experiment).
  const Netlist original = TestCircuit(5);
  const FlowResult flow = RunSecureFlow(original, PackageOptions(5));
  const attack::IdealAttackResult r = attack::RunIdealAttack(
      original, flow.lock.locked, flow.lock.key, 2048, 512, 5);
  EXPECT_GE(r.OerPercent(), 95.0);
}

TEST(PackageMode, FunctionPreservedWithCorrectPads) {
  const Netlist original = TestCircuit(6);
  const FlowResult flow = RunSecureFlow(original, PackageOptions(6));
  // Binding the pads (key inputs) to the correct key restores the design.
  EXPECT_TRUE(RandomPatternsAgree(original, *flow.physical.netlist, 2048, 6,
                                  {}, flow.lock.key));
}

}  // namespace
}  // namespace splitlock::core
