#include <gtest/gtest.h>

#include <map>
#include <set>

#include "circuits/random_circuit.hpp"
#include "lock/atpg_lock.hpp"
#include "lock/key.hpp"
#include "netlist/libcell.hpp"
#include "phys/placer.hpp"
#include "phys/power.hpp"
#include "phys/router.hpp"
#include "phys/timing.hpp"
#include "sim/simulator.hpp"

namespace splitlock::phys {
namespace {

Netlist TestCircuit(uint64_t seed, size_t gates = 400) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 10;
  spec.num_gates = gates;
  spec.seed = seed;
  return circuits::GenerateCircuit(spec);
}

// A small locked+realized netlist with TIE cells and key-gates.
Netlist LockedRealized(uint64_t seed) {
  const Netlist original = TestCircuit(seed, 500);
  lock::AtpgLockOptions opts;
  opts.key_bits = 24;
  opts.seed = seed;
  opts.verify_lec = false;
  const lock::AtpgLockResult r = lock::LockWithAtpg(original, opts);
  return lock::RealizeKeyAsTies(r.locked, r.key);
}

TEST(Placer, AllPhysicalCellsPlacedInsideDie) {
  const Netlist nl = TestCircuit(1);
  PlacerOptions opts;
  opts.seed = 1;
  opts.moves_per_cell = 20;
  const Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), opts);
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    if (!IsPhysicalOp(nl.gate(g).op)) continue;
    EXPECT_TRUE(layout.placed[g]);
    EXPECT_TRUE(layout.die.Contains(layout.position[g]))
        << "gate " << g << " outside die";
  }
}

TEST(Placer, NoTwoCellsShareASlot) {
  const Netlist nl = TestCircuit(2);
  PlacerOptions opts;
  opts.seed = 2;
  opts.moves_per_cell = 20;
  const Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), opts);
  std::set<std::pair<double, double>> seen;
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    if (!IsPhysicalOp(nl.gate(g).op)) continue;
    const auto key = std::make_pair(layout.position[g].x,
                                    layout.position[g].y);
    EXPECT_TRUE(seen.insert(key).second) << "slot collision at gate " << g;
  }
}

TEST(Placer, AnnealingBeatsRandomPlacement) {
  const Netlist nl = TestCircuit(3, 600);
  PlacerOptions random_opts;
  random_opts.seed = 3;
  random_opts.moves_per_cell = 0;  // initial random placement only
  const Layout random_layout =
      PlaceDesign(nl, Tech::Nangate45Like(), random_opts);
  PlacerOptions sa_opts;
  sa_opts.seed = 3;
  sa_opts.moves_per_cell = 60;
  const Layout sa_layout = PlaceDesign(nl, Tech::Nangate45Like(), sa_opts);
  EXPECT_LT(sa_layout.TotalHpwl(), 0.8 * random_layout.TotalHpwl());
}

TEST(Placer, IoPadsSitOnBoundary) {
  const Netlist nl = TestCircuit(4);
  PlacerOptions opts;
  opts.seed = 4;
  opts.moves_per_cell = 5;
  const Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), opts);
  for (GateId g : nl.inputs()) {
    const Point p = layout.position[g];
    const bool on_edge = p.x == layout.die.lo.x || p.x == layout.die.hi.x ||
                         p.y == layout.die.lo.y || p.y == layout.die.hi.y;
    EXPECT_TRUE(on_edge);
  }
}

TEST(Placer, SecureModeFixesTieCells) {
  const Netlist nl = LockedRealized(5);
  PlacerOptions opts;
  opts.seed = 5;
  opts.moves_per_cell = 10;
  opts.randomize_tie_cells = true;
  const Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), opts);
  size_t ties = 0;
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    if (nl.gate(g).HasFlag(kFlagTie)) {
      EXPECT_TRUE(layout.fixed[g]);
      EXPECT_TRUE(layout.placed[g]);
      ++ties;
    }
  }
  EXPECT_EQ(ties, 24u);
}

TEST(Placer, SecureTiePlacementIsScattered) {
  // With randomized TIE cells, the mean TIE-to-keygate distance must be on
  // the order of the die size, not a few sites.
  const Netlist nl = LockedRealized(6);
  PlacerOptions opts;
  opts.seed = 6;
  opts.moves_per_cell = 40;
  opts.randomize_tie_cells = true;
  const Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), opts);
  double total = 0.0;
  size_t count = 0;
  for (NetId n : KeyNetsOf(nl)) {
    const GateId tie = nl.DriverOf(n);
    for (const Pin& p : nl.net(n).sinks) {
      total += ManhattanDistance(layout.position[tie],
                                 layout.position[p.gate]);
      ++count;
    }
  }
  ASSERT_GT(count, 0u);
  const double mean = total / count;
  EXPECT_GT(mean, 0.15 * layout.die.HalfPerimeter() / 2.0);
}

TEST(Router, EveryConsumedNetRouted) {
  const Netlist nl = TestCircuit(7);
  PlacerOptions popts;
  popts.seed = 7;
  popts.moves_per_cell = 10;
  Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 7;
  RouteDesign(layout, ropts);
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const Net& net = nl.net(n);
    if (net.driver == kNullId || net.sinks.empty()) continue;
    EXPECT_TRUE(layout.routes[n].routed) << "net " << n;
    EXPECT_EQ(layout.routes[n].conns.size(), net.sinks.size());
  }
}

TEST(Router, SegmentsRespectLayerDirections) {
  const Netlist nl = TestCircuit(8);
  PlacerOptions popts;
  popts.seed = 8;
  popts.moves_per_cell = 10;
  Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 8;
  RouteDesign(layout, ropts);
  for (const NetRoute& route : layout.routes) {
    for (const ConnRoute& conn : route.conns) {
      for (const Segment& s : conn.segments) {
        const bool horizontal = s.a.y == s.b.y;
        const bool vertical = s.a.x == s.b.x;
        EXPECT_TRUE(horizontal || vertical);
        if (horizontal && !vertical) {
          EXPECT_TRUE(layout.tech.IsHorizontal(s.layer))
              << "H segment on vertical layer M" << s.layer;
        }
        if (vertical && !horizontal) {
          EXPECT_FALSE(layout.tech.IsHorizontal(s.layer))
              << "V segment on horizontal layer M" << s.layer;
        }
      }
    }
  }
}

TEST(Router, LongNetsUseHigherLayers) {
  const Netlist nl = TestCircuit(9, 900);
  PlacerOptions popts;
  popts.seed = 9;
  popts.moves_per_cell = 30;
  Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 9;
  ropts.promote_probability = 0.0;
  RouteDesign(layout, ropts);
  double short_sum = 0.0;
  double long_sum = 0.0;
  size_t short_n = 0;
  size_t long_n = 0;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    if (!layout.routes[n].routed) continue;
    const int max_layer = layout.routes[n].MaxLayer();
    const double span = layout.NetHpwl(n);
    if (max_layer <= 3) {
      short_sum += span;
      ++short_n;
    } else if (max_layer >= 5) {
      long_sum += span;
      ++long_n;
    }
  }
  ASSERT_GT(short_n, 0u);
  ASSERT_GT(long_n, 0u);
  EXPECT_LT(short_sum / short_n, long_sum / long_n);
}

TEST(Router, KeyNetsLiftedAboveSplit) {
  Netlist nl = LockedRealized(10);
  PlacerOptions popts;
  popts.seed = 10;
  popts.moves_per_cell = 10;
  Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 10;
  RouteDesign(layout, ropts);
  const LiftStats stats = LiftKeyNets(layout, nl, 5, 10);
  EXPECT_GT(stats.key_nets_lifted, 0u);
  EXPECT_GT(stats.stacked_vias, 0u);
  for (NetId n : KeyNetsOf(nl)) {
    const NetRoute& route = layout.routes[n];
    EXPECT_TRUE(route.routed);
    for (const ConnRoute& conn : route.conns) {
      for (const Segment& s : conn.segments) {
        EXPECT_GE(s.layer, 5) << "key-net wiring below the lift layer";
      }
      // Stacked vias reach from the pin layer to the lift pair.
      bool has_stack = false;
      for (const ViaStack& v : conn.vias) {
        if (v.from_layer == 1 && v.to_layer >= 5) has_stack = true;
      }
      if (!conn.segments.empty()) EXPECT_TRUE(has_stack);
    }
  }
}

TEST(Sta, DeeperLogicHasLongerCriticalPath) {
  // INV chain: critical path grows with depth.
  auto chain = [](int depth) {
    Netlist nl("chain");
    NetId cur = nl.AddInput("a");
    for (int i = 0; i < depth; ++i) cur = nl.AddGate(GateOp::kInv, {cur});
    nl.AddOutput(cur, "y");
    return nl;
  };
  const Netlist shallow = chain(4);
  const Netlist deep = chain(24);
  PlacerOptions popts;
  popts.moves_per_cell = 5;
  Layout l1 = PlaceDesign(shallow, Tech::Nangate45Like(), popts);
  Layout l2 = PlaceDesign(deep, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  RouteDesign(l1, ropts);
  RouteDesign(l2, ropts);
  const TimingReport t1 = RunSta(l1);
  const TimingReport t2 = RunSta(l2);
  EXPECT_GT(t2.critical_path_ps, t1.critical_path_ps * 3.0);
}

TEST(Sta, WireLoadIncreasesDelay) {
  const Netlist nl = TestCircuit(11);
  PlacerOptions popts;
  popts.seed = 11;
  popts.moves_per_cell = 30;
  Layout placed = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 11;
  Layout unrouted = placed;  // no routes: zero wire parasitics
  RouteDesign(placed, ropts);
  const double with_wires = RunSta(placed).critical_path_ps;
  const double without_wires = RunSta(unrouted).critical_path_ps;
  EXPECT_GT(with_wires, without_wires);
}

TEST(Power, PositiveAndDominatedByActivity) {
  const Netlist nl = TestCircuit(12);
  PlacerOptions popts;
  popts.seed = 12;
  popts.moves_per_cell = 10;
  Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 12;
  RouteDesign(layout, ropts);
  const std::vector<double> rates = EstimateToggleRates(nl, 2048, 12);
  const PowerReport active = EstimatePower(layout, rates);
  EXPECT_GT(active.dynamic_uw, 0.0);
  EXPECT_GT(active.leakage_uw, 0.0);
  const std::vector<double> zero(nl.NumNets(), 0.0);
  const PowerReport idle = EstimatePower(layout, zero);
  EXPECT_DOUBLE_EQ(idle.dynamic_uw, 0.0);
  EXPECT_DOUBLE_EQ(idle.leakage_uw, active.leakage_uw);
}

TEST(Floorplan, UtilizationControlsDieArea) {
  const Netlist nl = TestCircuit(13);
  PlacerOptions dense;
  dense.seed = 13;
  dense.moves_per_cell = 0;
  dense.utilization = 0.85;
  PlacerOptions sparse = dense;
  sparse.utilization = 0.55;
  const Layout dense_layout = PlaceDesign(nl, Tech::Nangate45Like(), dense);
  const Layout sparse_layout = PlaceDesign(nl, Tech::Nangate45Like(), sparse);
  EXPECT_LT(dense_layout.DieAreaUm2(), sparse_layout.DieAreaUm2());
}

}  // namespace
}  // namespace splitlock::phys
