// Additional physical-design coverage: technology tables, ECO re-route
// effects, driver upsizing, wirelength accounting, and layer assignment
// invariants.
#include <gtest/gtest.h>

#include "circuits/random_circuit.hpp"
#include "lock/atpg_lock.hpp"
#include "lock/key.hpp"
#include "netlist/libcell.hpp"
#include "phys/placer.hpp"
#include "phys/power.hpp"
#include "phys/router.hpp"
#include "phys/timing.hpp"
#include "sim/simulator.hpp"

namespace splitlock::phys {
namespace {

Netlist TestCircuit(uint64_t seed, size_t gates = 500) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 10;
  spec.num_gates = gates;
  spec.seed = seed;
  return circuits::GenerateCircuit(spec);
}

Netlist LockedRealized(uint64_t seed) {
  const Netlist original = TestCircuit(seed, 600);
  lock::AtpgLockOptions opts;
  opts.key_bits = 32;
  opts.seed = seed;
  opts.verify_lec = false;
  const lock::AtpgLockResult r = lock::LockWithAtpg(original, opts);
  return lock::RealizeKeyAsTies(r.locked, r.key);
}

TEST(Tech, StackIsConsistent) {
  const Tech t = Tech::Nangate45Like();
  ASSERT_EQ(t.NumLayers(), 8);
  for (int m = 1; m <= t.NumLayers(); ++m) {
    const Layer& l = t.Metal(m);
    EXPECT_GT(l.r_kohm_per_um, 0.0);
    EXPECT_GT(l.c_ff_per_um, 0.0);
    EXPECT_GT(l.pitch_um, 0.0);
    if (m > 1) {
      // Preferred direction alternates; resistance shrinks going up.
      EXPECT_NE(t.IsHorizontal(m), t.IsHorizontal(m - 1));
      EXPECT_LE(t.Metal(m).r_kohm_per_um, t.Metal(m - 1).r_kohm_per_um);
      EXPECT_GE(t.Metal(m).pitch_um, t.Metal(m - 1).pitch_um);
    }
  }
  EXPECT_TRUE(t.IsHorizontal(1));
}

TEST(Router, NoSegmentAboveTopMetal) {
  const Netlist nl = TestCircuit(1, 800);
  PlacerOptions popts;
  popts.seed = 1;
  popts.moves_per_cell = 10;
  Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 1;
  RouteDesign(layout, ropts);
  for (const NetRoute& route : layout.routes) {
    EXPECT_LE(route.MaxLayer(), layout.tech.NumLayers());
  }
}

TEST(Router, WirelengthAccountingConsistent) {
  const Netlist nl = TestCircuit(2);
  PlacerOptions popts;
  popts.seed = 2;
  popts.moves_per_cell = 10;
  Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 2;
  RouteDesign(layout, ropts);
  double by_layer = 0.0;
  for (int m = 1; m <= layout.tech.NumLayers(); ++m) {
    by_layer += layout.WirelengthOnLayer(m);
  }
  double by_net = 0.0;
  for (const NetRoute& r : layout.routes) by_net += r.TotalLength();
  EXPECT_NEAR(by_layer, by_net, 1e-6);
  EXPECT_GT(by_net, 0.0);
}

TEST(Router, EcoDetoursAddWirelengthAndVias) {
  Netlist nl = LockedRealized(3);
  PlacerOptions popts;
  popts.seed = 3;
  popts.moves_per_cell = 10;
  Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 3;
  RouteDesign(layout, ropts);
  double regular_before = 0.0;
  const std::vector<NetId> key_nets = KeyNetsOf(nl);
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    if (std::find(key_nets.begin(), key_nets.end(), n) == key_nets.end()) {
      regular_before += layout.routes[n].TotalLength();
    }
  }
  const LiftStats stats = LiftKeyNets(layout, nl, 5, 3);
  double regular_after = 0.0;
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    if (std::find(key_nets.begin(), key_nets.end(), n) == key_nets.end()) {
      regular_after += layout.routes[n].TotalLength();
    }
  }
  if (stats.regular_nets_detoured > 0) {
    EXPECT_GT(regular_after, regular_before);
  }
  EXPECT_GE(regular_after, regular_before);
}

TEST(Router, UpsizingRespectsLoadLimits) {
  Netlist nl = LockedRealized(4);
  PlacerOptions popts;
  popts.seed = 4;
  popts.moves_per_cell = 10;
  Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 4;
  RouteDesign(layout, ropts);
  LiftKeyNets(layout, nl, 5, 4);
  // After the upsizing pass, no X4 driver may still be overloaded only
  // because the pass stopped early (X4 is the ceiling; X1/X2 must be
  // within their limits).
  for (NetId n = 0; n < nl.NumNets(); ++n) {
    const Net& net = nl.net(n);
    if (net.driver == kNullId || !layout.routes[n].routed) continue;
    const Gate& driver = nl.gate(net.driver);
    if (!IsPhysicalOp(driver.op) || driver.HasFlag(kFlagTie)) continue;
    if (driver.op == GateOp::kTieHi || driver.op == GateOp::kTieLo ||
        driver.op == GateOp::kKeyIn) {
      continue;
    }
    double load = layout.NetWireCapFf(n);
    for (const Pin& p : net.sinks) {
      const Gate& sink = nl.gate(p.gate);
      if (IsPhysicalOp(sink.op)) load += CellFor(sink).input_cap_ff;
    }
    if (driver.drive < 4) {
      EXPECT_LE(load, CellFor(driver).max_load_ff * 1.0001)
          << "driver " << net.driver << " left undersized";
    }
  }
}

TEST(Router, UpsizedCellsCostAreaAndCap) {
  Gate nand{GateOp::kNand, {0, 1}, 2, "g", 0, 1};
  const LibCell& x1 = CellFor(nand);
  nand.drive = 2;
  const LibCell& x2 = CellFor(nand);
  EXPECT_GT(x2.input_cap_ff, x1.input_cap_ff);
  EXPECT_GT(x2.AreaUm2(), x1.AreaUm2());
  EXPECT_LT(x2.drive_res_kohm, x1.drive_res_kohm);
}

TEST(Power, EcoDetoursIncreasePower) {
  Netlist nl_a = LockedRealized(5);
  Netlist nl_b = nl_a;  // identical copies, one lifted
  PlacerOptions popts;
  popts.seed = 5;
  popts.moves_per_cell = 10;
  Layout unlifted = PlaceDesign(nl_a, Tech::Nangate45Like(), popts);
  Layout lifted = PlaceDesign(nl_b, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 5;
  ropts.route_key_nets_as_regular = false;
  RouteDesign(unlifted, ropts);
  RouteDesign(lifted, ropts);
  LiftKeyNets(lifted, nl_b, 5, 5);
  const std::vector<double> rates_a = EstimateToggleRates(nl_a, 2048, 5);
  const std::vector<double> rates_b = EstimateToggleRates(nl_b, 2048, 5);
  const PowerReport before = EstimatePower(unlifted, rates_a);
  const PowerReport after = EstimatePower(lifted, rates_b);
  // Key-nets are static, so any power change comes from ECO detours and
  // upsizing; it must not be a saving.
  EXPECT_GE(after.TotalUw(), before.TotalUw() * 0.999);
}

TEST(Sta, ArrivalTimesAreMonotonicAlongPaths) {
  const Netlist nl = TestCircuit(6);
  PlacerOptions popts;
  popts.seed = 6;
  popts.moves_per_cell = 10;
  Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 6;
  RouteDesign(layout, ropts);
  const TimingReport t = RunSta(layout);
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (!IsPhysicalOp(gate.op) || IsSourceOp(gate.op) ||
        gate.out == kNullId) {
      continue;
    }
    for (NetId n : gate.fanins) {
      EXPECT_GE(t.net_arrival_ps[gate.out], t.net_arrival_ps[n]);
    }
  }
}

TEST(Placer, KeyPadsModeSpreadsAlongTopEdge) {
  Netlist original = TestCircuit(7, 600);
  lock::AtpgLockOptions lopts;
  lopts.key_bits = 16;
  lopts.seed = 7;
  lopts.verify_lec = false;
  const lock::AtpgLockResult r = lock::LockWithAtpg(original, lopts);
  // Package mode: keep kKeyIn and place as pads.
  const Netlist nl = r.locked.Compacted();
  PlacerOptions popts;
  popts.seed = 7;
  popts.moves_per_cell = 5;
  popts.key_inputs_as_pads = true;
  const Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  double prev_x = -1.0;
  for (GateId k : nl.KeyInputs()) {
    EXPECT_DOUBLE_EQ(layout.position[k].y, layout.die.hi.y);
    EXPECT_GT(layout.position[k].x, prev_x);  // strictly increasing spread
    prev_x = layout.position[k].x;
  }
}

}  // namespace
}  // namespace splitlock::phys
