// Parallel physical design: the determinism contract for the speculative
// placer and the per-net-stream router, plus regressions for the phys-layer
// bugs fixed alongside (STA OOB accesses, ECO detour on the wrong segment).
#include <gtest/gtest.h>

#include "circuits/random_circuit.hpp"
#include "circuits/suites.hpp"
#include "exec/thread_pool.hpp"
#include "lock/atpg_lock.hpp"
#include "lock/key.hpp"
#include "phys/placer.hpp"
#include "phys/router.hpp"
#include "phys/timing.hpp"

namespace splitlock::phys {
namespace {

// Restores the configured default pool width when a test exits.
struct PoolWidthGuard {
  ~PoolWidthGuard() { exec::ThreadPool::SetDefaultThreadCount(0); }
};

Netlist TestCircuit(uint64_t seed, size_t gates = 400) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 10;
  spec.num_gates = gates;
  spec.seed = seed;
  return circuits::GenerateCircuit(spec);
}

// A locked+realized netlist with TIE cells and key-gates.
Netlist LockedRealized(uint64_t seed) {
  const Netlist original = TestCircuit(seed, 500);
  lock::AtpgLockOptions opts;
  opts.key_bits = 24;
  opts.seed = seed;
  opts.verify_lec = false;
  const lock::AtpgLockResult r = lock::LockWithAtpg(original, opts);
  return lock::RealizeKeyAsTies(r.locked, r.key);
}

TEST(ParallelPlacer, BitIdenticalToSequentialReference) {
  const Netlist nl = LockedRealized(1);
  PlacerOptions seq;
  seq.seed = 11;
  seq.moves_per_cell = 30;
  seq.parallel_moves = false;
  PlacerOptions par = seq;
  par.parallel_moves = true;
  const Layout a = PlaceDesign(nl, Tech::Nangate45Like(), seq);
  const Layout b = PlaceDesign(nl, Tech::Nangate45Like(), par);
  ASSERT_EQ(a.position.size(), b.position.size());
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    EXPECT_EQ(a.position[g], b.position[g]) << "gate " << g;
    EXPECT_EQ(a.placed[g], b.placed[g]);
    EXPECT_EQ(a.fixed[g], b.fixed[g]);
  }
  EXPECT_EQ(LayoutFingerprint(a), LayoutFingerprint(b));
}

TEST(ParallelPlacer, ThreadCountInvariant) {
  PoolWidthGuard guard;
  const Netlist nl = LockedRealized(2);
  PlacerOptions opts;
  opts.seed = 22;
  opts.moves_per_cell = 20;
  opts.parallel_moves = true;
  uint64_t reference = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::SetDefaultThreadCount(threads);
    const Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), opts);
    const uint64_t fp = LayoutFingerprint(layout);
    if (threads == 1) {
      reference = fp;
    } else {
      EXPECT_EQ(fp, reference) << "placement diverged at " << threads
                               << " threads";
    }
  }
}

TEST(ParallelPlacer, NaiveModeAlsoBitIdentical) {
  // The naive (TIE cells annealed, key-nets attached) ablation flow must
  // honor the same contract: it anneals a larger pool over more nets.
  const Netlist nl = LockedRealized(3);
  PlacerOptions seq;
  seq.seed = 33;
  seq.moves_per_cell = 15;
  seq.randomize_tie_cells = false;
  seq.parallel_moves = false;
  PlacerOptions par = seq;
  par.parallel_moves = true;
  EXPECT_EQ(LayoutFingerprint(PlaceDesign(nl, Tech::Nangate45Like(), seq)),
            LayoutFingerprint(PlaceDesign(nl, Tech::Nangate45Like(), par)));
}

TEST(ParallelRouter, RouteAndLiftThreadCountInvariant) {
  PoolWidthGuard guard;
  Netlist nl = LockedRealized(4);
  PlacerOptions popts;
  popts.seed = 44;
  popts.moves_per_cell = 10;
  const Layout placed = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  uint64_t reference = 0;
  LiftStats ref_stats;
  for (size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::SetDefaultThreadCount(threads);
    // Fresh netlist copy per width: LiftKeyNets writes upsized drives back.
    Netlist nl_w = nl;
    Layout layout = placed;  // same placement into every width
    layout.netlist = &nl_w;
    RouterOptions ropts;
    ropts.seed = 44;
    RouteDesign(layout, ropts);
    const LiftStats stats = LiftKeyNets(layout, nl_w, 5, 44);
    const uint64_t fp = LayoutFingerprint(layout);
    if (threads == 1) {
      reference = fp;
      ref_stats = stats;
    } else {
      EXPECT_EQ(fp, reference) << "routing diverged at " << threads
                               << " threads";
      EXPECT_EQ(stats.key_nets_lifted, ref_stats.key_nets_lifted);
      EXPECT_EQ(stats.stacked_vias, ref_stats.stacked_vias);
      EXPECT_EQ(stats.regular_nets_detoured, ref_stats.regular_nets_detoured);
      EXPECT_EQ(stats.drivers_upsized, ref_stats.drivers_upsized);
      EXPECT_DOUBLE_EQ(stats.lifted_wirelength_um,
                       ref_stats.lifted_wirelength_um);
    }
  }
}

TEST(ParallelRouter, LiftNetsAboveThreadCountInvariant) {
  PoolWidthGuard guard;
  const Netlist nl = TestCircuit(5);
  PlacerOptions popts;
  popts.seed = 55;
  popts.moves_per_cell = 10;
  const Layout placed = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  std::vector<NetId> nets;
  for (NetId n = 0; n < nl.NumNets() && nets.size() < 32; ++n) {
    const Net& net = nl.net(n);
    if (net.driver != kNullId && !net.sinks.empty()) nets.push_back(n);
  }
  ASSERT_FALSE(nets.empty());
  uint64_t reference = 0;
  for (size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::SetDefaultThreadCount(threads);
    Layout layout = placed;
    RouterOptions ropts;
    ropts.seed = 55;
    RouteDesign(layout, ropts);
    LiftNetsAbove(layout, nets, 6, 55);
    const uint64_t fp = LayoutFingerprint(layout);
    if (threads == 1) {
      reference = fp;
    } else {
      EXPECT_EQ(fp, reference);
    }
  }
}

TEST(Sta, SinkLessAndDriverLessCornersDoNotCrash) {
  // A logic gate whose output net was detached (out == kNullId) and a
  // primary output whose fanin list was emptied: both occur transiently
  // during netlist surgery, and RunSta used to index nets/arrays with
  // kNullId for them.
  Netlist nl("corner");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId y = nl.AddGate(GateOp::kAnd, {a, b}, "g1");
  const NetId z = nl.AddGate(GateOp::kInv, {y}, "g2");
  const GateId po = nl.AddOutput(z, "out");
  const NetId orphan_net = nl.AddGate(GateOp::kInv, {a}, "orphan");
  // Detach: the orphan gate keeps its fanin but loses its output net.
  nl.gate(nl.DriverOf(orphan_net)).out = kNullId;
  // Driver-less output pseudo-gate.
  const GateId dangling = nl.AddOutput(z, "dangling");
  nl.gate(dangling).fanins.clear();

  PlacerOptions popts;
  popts.moves_per_cell = 2;
  Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  RouteDesign(layout, ropts);
  const TimingReport report = RunSta(layout);
  EXPECT_GT(report.critical_path_ps, 0.0);  // the real path still times
  ASSERT_EQ(report.net_arrival_ps.size(), nl.NumNets());
  for (double t : report.net_arrival_ps) {
    EXPECT_TRUE(std::isfinite(t));
    EXPECT_GE(t, 0.0);
  }
  (void)po;
}

TEST(ParallelSta, MatchesSerialReferenceExactly) {
  // 800 logic gates puts the design above the parallel-dispatch threshold,
  // so RunSta takes the levelized path while RunStaSerial walks the same
  // netlist in plain topological order. The contract is bitwise equality:
  // every gate's delay is computed identically and each net has exactly one
  // driver, so the schedule cannot change any arrival time.
  const Netlist nl = TestCircuit(6, 800);
  PlacerOptions popts;
  popts.seed = 66;
  popts.moves_per_cell = 10;
  Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 66;
  RouteDesign(layout, ropts);

  const TimingReport serial = RunStaSerial(layout);
  const TimingReport parallel = RunSta(layout);
  EXPECT_EQ(serial.critical_path_ps, parallel.critical_path_ps);
  ASSERT_EQ(serial.net_arrival_ps.size(), parallel.net_arrival_ps.size());
  for (size_t n = 0; n < serial.net_arrival_ps.size(); ++n) {
    EXPECT_EQ(serial.net_arrival_ps[n], parallel.net_arrival_ps[n])
        << "net " << n;
  }
}

TEST(ParallelSta, ThreadCountInvariant) {
  PoolWidthGuard guard;
  // A realistic suite member (scaled down) rather than a random DAG: this
  // is the shape the flow actually times.
  const Netlist nl = circuits::MakeItc99("b14", 0.1);
  ASSERT_GT(nl.NumLogicGates(), 512u);  // must exercise the parallel path
  PlacerOptions popts;
  popts.seed = 77;
  popts.moves_per_cell = 5;
  Layout layout = PlaceDesign(nl, Tech::Nangate45Like(), popts);
  RouterOptions ropts;
  ropts.seed = 77;
  RouteDesign(layout, ropts);

  TimingReport reference;
  for (size_t threads : {1u, 2u, 8u}) {
    exec::ThreadPool::SetDefaultThreadCount(threads);
    const TimingReport report = RunSta(layout);
    if (threads == 1) {
      reference = report;
      continue;
    }
    EXPECT_EQ(report.critical_path_ps, reference.critical_path_ps)
        << "critical path diverged at " << threads << " threads";
    ASSERT_EQ(report.net_arrival_ps.size(), reference.net_arrival_ps.size());
    for (size_t n = 0; n < report.net_arrival_ps.size(); ++n) {
      EXPECT_EQ(report.net_arrival_ps[n], reference.net_arrival_ps[n])
          << "net " << n << " diverged at " << threads << " threads";
    }
  }
}

TEST(EcoDetour, ShiftsTheSegmentOnTheLiftPair) {
  // Two-leg L route whose FIRST leg is below the lift pair and SECOND leg
  // is on it: the detour must shift the second leg (the one consuming
  // lift-pair tracks), not blindly segments.front().
  const Tech tech = Tech::Nangate45Like();
  const int h_layer = tech.IsHorizontal(5) ? 5 : 6;
  const int v_layer = tech.IsHorizontal(5) ? 6 : 5;
  ConnRoute conn;
  const Point src{10.0, 4.0};
  const Point corner{10.0, 20.0};
  const Point dst{30.0, 20.0};
  conn.segments.push_back(Segment{3, src, corner});        // below the pair
  conn.segments.push_back(Segment{h_layer, corner, dst});  // on the pair
  conn.vias.push_back(ViaStack{src, 1, 3});
  conn.vias.push_back(ViaStack{corner, 3, h_layer});
  conn.vias.push_back(ViaStack{dst, 1, h_layer});
  const size_t vias_before = conn.vias.size();

  ASSERT_TRUE(ApplyEcoDetour(conn, tech, h_layer, v_layer));

  // The below-pair leg is untouched.
  EXPECT_EQ(conn.segments[0].layer, 3);
  EXPECT_EQ(conn.segments[0].a, src);
  EXPECT_EQ(conn.segments[0].b, corner);
  // The lift-pair leg shifted sideways by six of ITS layer's pitches.
  const double jog = tech.Metal(h_layer).pitch_um * 6.0;
  EXPECT_EQ(conn.segments[1].layer, h_layer);
  EXPECT_EQ(conn.segments[1].a, (Point{corner.x, corner.y + jog}));
  EXPECT_EQ(conn.segments[1].b, (Point{dst.x, dst.y + jog}));
  // Two jogs on the pair's other (perpendicular) metal reconnect the
  // original endpoints to the shifted wire.
  ASSERT_EQ(conn.segments.size(), 4u);
  for (size_t i = 2; i < 4; ++i) {
    EXPECT_EQ(conn.segments[i].layer, v_layer);
    EXPECT_EQ(conn.segments[i].a.x, conn.segments[i].b.x);  // vertical jog
  }
  EXPECT_EQ(conn.segments[2].a, corner);
  EXPECT_EQ(conn.segments[2].b, (Point{corner.x, corner.y + jog}));
  EXPECT_EQ(conn.segments[3].a, (Point{dst.x, dst.y + jog}));
  EXPECT_EQ(conn.segments[3].b, dst);
  // One via at each original endpoint spanning exactly the lift pair.
  ASSERT_EQ(conn.vias.size(), vias_before + 2);
  for (size_t i = vias_before; i < conn.vias.size(); ++i) {
    EXPECT_EQ(conn.vias[i].from_layer, std::min(h_layer, v_layer));
    EXPECT_EQ(conn.vias[i].to_layer, std::max(h_layer, v_layer));
  }
  EXPECT_EQ(conn.vias[vias_before].at, corner);
  EXPECT_EQ(conn.vias[vias_before + 1].at, dst);
}

TEST(EcoDetour, VerticalLiftPairSegmentJogsHorizontally) {
  const Tech tech = Tech::Nangate45Like();
  const int h_layer = tech.IsHorizontal(5) ? 5 : 6;
  const int v_layer = tech.IsHorizontal(5) ? 6 : 5;
  ConnRoute conn;
  const Point a{8.0, 2.0};
  const Point b{8.0, 40.0};
  conn.segments.push_back(Segment{v_layer, a, b});
  ASSERT_TRUE(ApplyEcoDetour(conn, tech, h_layer, v_layer));
  const double jog = tech.Metal(v_layer).pitch_um * 6.0;
  EXPECT_EQ(conn.segments[0].layer, v_layer);
  EXPECT_EQ(conn.segments[0].a, (Point{a.x + jog, a.y}));
  EXPECT_EQ(conn.segments[0].b, (Point{b.x + jog, b.y}));
  ASSERT_EQ(conn.segments.size(), 3u);
  for (size_t i = 1; i < 3; ++i) {
    EXPECT_EQ(conn.segments[i].layer, h_layer);
    EXPECT_EQ(conn.segments[i].a.y, conn.segments[i].b.y);  // horizontal jog
  }
}

TEST(EcoDetour, NoLiftPairSegmentLeavesConnUntouched) {
  const Tech tech = Tech::Nangate45Like();
  ConnRoute conn;
  conn.segments.push_back(Segment{2, Point{0, 0}, Point{5, 0}});
  conn.segments.push_back(Segment{3, Point{5, 0}, Point{5, 5}});
  const ConnRoute before = conn;
  EXPECT_FALSE(ApplyEcoDetour(conn, tech, 5, 6));
  ASSERT_EQ(conn.segments.size(), before.segments.size());
  for (size_t i = 0; i < conn.segments.size(); ++i) {
    EXPECT_EQ(conn.segments[i].a, before.segments[i].a);
    EXPECT_EQ(conn.segments[i].b, before.segments[i].b);
    EXPECT_EQ(conn.segments[i].layer, before.segments[i].layer);
  }
  EXPECT_EQ(conn.vias.size(), before.vias.size());
}

}  // namespace
}  // namespace splitlock::phys
