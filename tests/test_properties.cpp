// Cross-module invariants checked over parameterized sweeps of circuits,
// seeds, key sizes and split layers. These are the properties the paper's
// formalism rests on (Sec. II-C): the compile function H restores the
// original function, the split hides exactly the above-split connectivity,
// and the secure flow leaves no FEOL hint for key-nets.
#include <gtest/gtest.h>

#include <tuple>

#include "attack/metrics.hpp"
#include "attack/proximity.hpp"
#include "circuits/random_circuit.hpp"
#include "core/flow.hpp"
#include "lec/lec.hpp"
#include "phys/router.hpp"
#include "sim/metrics.hpp"
#include "split/split.hpp"

namespace splitlock {
namespace {

Netlist Circuit(uint64_t seed, size_t gates) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 10;
  spec.num_gates = gates;
  spec.seed = seed;
  spec.bias_cone_fraction = 0.14;
  return circuits::GenerateCircuit(spec);
}

// ---- Property: H(C(x1,x2), lambda(x2)) == C (Definition 1, item 3) ------

class CompileProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(CompileProperty, TruthAssignmentRestoresChip) {
  const auto [seed, split_layer] = GetParam();
  const Netlist original = Circuit(seed, 600);
  core::FlowOptions opts;
  opts.key_bits = 24;
  opts.seed = seed;
  opts.split_layer = split_layer;
  opts.placer_moves_per_cell = 15;
  const core::FlowResult flow = core::RunSecureFlow(original, opts);

  split::Assignment truth(flow.feol.sink_stubs.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = flow.feol.sink_stubs[i].true_net;
  }
  const Netlist compiled = split::BuildRecoveredNetlist(flow.feol, truth);
  // Compiled chip == realized chip == original function.
  EXPECT_TRUE(RandomPatternsAgree(original, compiled, 1024, seed));
}

INSTANTIATE_TEST_SUITE_P(SeedsAndLayers, CompileProperty,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(4, 5, 6)));

// ---- Property: locking is transparent exactly under the correct key -----

class LockKeyProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(LockKeyProperty, CorrectKeyYesWrongKeyNo) {
  const auto [seed, key_bits] = GetParam();
  const Netlist original = Circuit(seed, 500);
  lock::AtpgLockOptions opts;
  opts.key_bits = key_bits;
  opts.seed = seed;
  opts.verify_lec = false;
  const lock::AtpgLockResult r = lock::LockWithAtpg(original, opts);
  ASSERT_EQ(r.key.size(), key_bits);

  const LecResult good = CheckEquivalence(original, r.locked, {}, r.key);
  EXPECT_TRUE(good.equivalent);

  // Flip one comparator bit (if any) — formally inequivalent.
  if (r.pattern_bits > 0) {
    std::vector<uint8_t> wrong = r.key;
    wrong[0] ^= 1;
    const LecResult bad = CheckEquivalence(original, r.locked, {}, wrong);
    ASSERT_TRUE(bad.proven);
    EXPECT_FALSE(bad.equivalent);
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndKeys, LockKeyProperty,
                         ::testing::Combine(::testing::Values(11, 12, 13, 14),
                                            ::testing::Values(16, 48)));

// ---- Property: no key-net FEOL wiring at any split layer ----------------

class KeyNetHidingProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(KeyNetHidingProperty, NoKeyWiringAtOrBelowSplit) {
  const auto [seed, split_layer] = GetParam();
  const Netlist original = Circuit(seed, 600);
  core::FlowOptions opts;
  opts.key_bits = 16;
  opts.seed = seed;
  opts.split_layer = split_layer;
  opts.placer_moves_per_cell = 15;
  const core::FlowResult flow = core::RunSecureFlow(original, opts);
  const Netlist& nl = *flow.physical.netlist;
  const phys::Layout& layout = *flow.physical.layout;

  for (NetId kn : phys::KeyNetsOf(nl)) {
    // Broken at the split...
    EXPECT_TRUE(flow.feol.net_broken[kn]);
    for (const phys::ConnRoute& conn : layout.routes[kn].conns) {
      // ...with zero wiring at or below the split layer...
      for (const phys::Segment& s : conn.segments) {
        EXPECT_GT(s.layer, split_layer);
      }
      // ...and stacked vias landing exactly on the cell pins.
      ASSERT_FALSE(conn.vias.empty());
      EXPECT_EQ(conn.vias.front().at, layout.PinOf(nl.DriverOf(kn)));
      EXPECT_EQ(conn.vias.back().at, layout.PinOf(conn.sink.gate));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SeedsAndLayers, KeyNetHidingProperty,
                         ::testing::Combine(::testing::Values(21, 22, 23),
                                            ::testing::Values(4, 6)));

// ---- Property: attack output is always a complete, sane assignment ------

class AttackTotalityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AttackTotalityProperty, AssignmentCompleteAndScorable) {
  const uint64_t seed = GetParam();
  const Netlist original = Circuit(seed, 500);
  core::FlowOptions opts;
  opts.key_bits = 16;
  opts.seed = seed;
  opts.placer_moves_per_cell = 15;
  const core::FlowResult flow = core::RunSecureFlow(original, opts);
  const attack::ProximityResult r = attack::RunProximityAttack(flow.feol);
  ASSERT_EQ(r.assignment.size(), flow.feol.sink_stubs.size());
  for (NetId n : r.assignment) {
    ASSERT_NE(n, kNullId);
    EXPECT_LT(n, flow.feol.netlist->NumNets());
  }
  const attack::AttackScore score =
      attack::ScoreAttack(flow.feol, r.assignment, 512, seed);
  EXPECT_GE(score.ccr.regular_ccr_percent, 0.0);
  EXPECT_LE(score.ccr.regular_ccr_percent, 100.0);
  EXPECT_GE(score.pnr_percent, 0.0);
  EXPECT_LE(score.pnr_percent, 100.0);
  EXPECT_LE(score.functional.hd_percent, 100.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttackTotalityProperty,
                         ::testing::Range<uint64_t>(31, 37));

// ---- Property: split views are consistent across layers -----------------

class SplitMonotonicityProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(SplitMonotonicityProperty, BrokenSetShrinksWithHigherSplit) {
  const uint64_t seed = GetParam();
  const Netlist original = Circuit(seed, 700);
  core::FlowOptions opts;
  opts.key_bits = 16;
  opts.seed = seed;
  opts.placer_moves_per_cell = 15;
  opts.lift_key_nets = false;  // pure regular-net comparison
  opts.randomize_tie_placement = false;
  const core::PhysicalBundle bundle = core::BuildPhysical(original, opts);
  size_t prev = SIZE_MAX;
  for (int layer = 3; layer <= 7; ++layer) {
    const split::FeolView feol = split::SplitLayout(*bundle.layout, layer);
    EXPECT_LE(feol.sink_stubs.size(), prev);
    prev = feol.sink_stubs.size();
    // Consistency: every broken net has a driver stub, every stub's true
    // net is marked broken.
    for (const split::SinkStub& stub : feol.sink_stubs) {
      EXPECT_TRUE(feol.net_broken[stub.true_net]);
    }
    for (const split::DriverStub& d : feol.driver_stubs) {
      EXPECT_TRUE(feol.net_broken[d.net]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitMonotonicityProperty,
                         ::testing::Range<uint64_t>(41, 46));

}  // namespace
}  // namespace splitlock
