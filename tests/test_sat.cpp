#include <gtest/gtest.h>

#include <vector>

#include "sat/solver.hpp"
#include "util/rng.hpp"

namespace splitlock::sat {
namespace {

TEST(SatSolver, TrivialSat) {
  Solver s;
  const Var a = s.NewVar();
  EXPECT_TRUE(s.AddUnit(MakeLit(a)));
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(a));
}

TEST(SatSolver, TrivialUnsat) {
  Solver s;
  const Var a = s.NewVar();
  EXPECT_TRUE(s.AddUnit(MakeLit(a)));
  EXPECT_FALSE(s.AddUnit(Negate(MakeLit(a))));
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(SatSolver, EmptyClauseUnsat) {
  Solver s;
  s.NewVar();
  EXPECT_FALSE(s.AddClause({}));
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(SatSolver, TautologyIgnored) {
  Solver s;
  const Var a = s.NewVar();
  EXPECT_TRUE(s.AddBinary(MakeLit(a), Negate(MakeLit(a))));
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SatSolver, ImplicationChainPropagates) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 20; ++i) v.push_back(s.NewVar());
  for (int i = 0; i + 1 < 20; ++i) {
    s.AddBinary(Negate(MakeLit(v[i])), MakeLit(v[i + 1]));  // v_i -> v_{i+1}
  }
  s.AddUnit(MakeLit(v[0]));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(s.ModelValue(v[i]));
}

TEST(SatSolver, XorChainConsistency) {
  // x0 ^ x1 = 1, x1 ^ x2 = 1, x0 ^ x2 = 1 is UNSAT (parity).
  Solver s;
  const Var x0 = s.NewVar();
  const Var x1 = s.NewVar();
  const Var x2 = s.NewVar();
  auto add_xor1 = [&](Var a, Var b) {
    s.AddBinary(MakeLit(a), MakeLit(b));
    s.AddBinary(Negate(MakeLit(a)), Negate(MakeLit(b)));
  };
  add_xor1(x0, x1);
  add_xor1(x1, x2);
  add_xor1(x0, x2);
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

// Pigeonhole principle PHP(n+1, n): n+1 pigeons into n holes — classically
// hard for resolution, still fine at this size, and definitely UNSAT.
TEST(SatSolver, Pigeonhole54Unsat) {
  constexpr int kPigeons = 5;
  constexpr int kHoles = 4;
  Solver s;
  Var p[kPigeons][kHoles];
  for (auto& row : p) {
    for (Var& v : row) v = s.NewVar();
  }
  for (int i = 0; i < kPigeons; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < kHoles; ++j) clause.push_back(MakeLit(p[i][j]));
    s.AddClause(clause);
  }
  for (int j = 0; j < kHoles; ++j) {
    for (int i1 = 0; i1 < kPigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < kPigeons; ++i2) {
        s.AddBinary(Negate(MakeLit(p[i1][j])), Negate(MakeLit(p[i2][j])));
      }
    }
  }
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(SatSolver, AssumptionsSelectBranch) {
  Solver s;
  const Var a = s.NewVar();
  const Var b = s.NewVar();
  s.AddBinary(MakeLit(a), MakeLit(b));  // a | b
  const std::vector<Lit> assume_na = {Negate(MakeLit(a))};
  ASSERT_EQ(s.Solve(assume_na), SolveResult::kSat);
  EXPECT_FALSE(s.ModelValue(a));
  EXPECT_TRUE(s.ModelValue(b));
  // Conflicting assumptions: a & !a via clauses.
  s.AddUnit(MakeLit(a));
  EXPECT_EQ(s.Solve(assume_na), SolveResult::kUnsat);
  // Without assumptions, still satisfiable.
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(a));
}

TEST(SatSolver, ConflictLimitYieldsUnknown) {
  // A hard instance with a conflict budget of 1 must give up.
  constexpr int kPigeons = 8;
  constexpr int kHoles = 7;
  Solver s;
  std::vector<std::vector<Var>> p(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : p) {
    for (Var& v : row) v = s.NewVar();
  }
  for (int i = 0; i < kPigeons; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < kHoles; ++j) clause.push_back(MakeLit(p[i][j]));
    s.AddClause(clause);
  }
  for (int j = 0; j < kHoles; ++j) {
    for (int i1 = 0; i1 < kPigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < kPigeons; ++i2) {
        s.AddBinary(Negate(MakeLit(p[i1][j])), Negate(MakeLit(p[i2][j])));
      }
    }
  }
  EXPECT_EQ(s.Solve({}, 1), SolveResult::kUnknown);
}

// Property sweep: random 3-SAT instances cross-checked against brute force.
class RandomSatTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSatTest, MatchesBruteForce) {
  splitlock::Rng rng(GetParam());
  constexpr int kVars = 12;
  const int num_clauses = 30 + static_cast<int>(rng.NextUint(40));

  std::vector<std::vector<Lit>> clauses;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      const Var v = static_cast<Var>(rng.NextUint(kVars));
      clause.push_back(MakeLit(v, rng.NextBool()));
    }
    clauses.push_back(clause);
  }

  bool brute_sat = false;
  for (uint32_t m = 0; m < (1u << kVars) && !brute_sat; ++m) {
    bool all = true;
    for (const auto& clause : clauses) {
      bool any = false;
      for (Lit l : clause) {
        const bool val = (m >> VarOf(l)) & 1;
        if (IsNegated(l) ? !val : val) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    brute_sat = all;
  }

  Solver s;
  for (int i = 0; i < kVars; ++i) s.NewVar();
  bool root_consistent = true;
  for (const auto& clause : clauses) {
    root_consistent = s.AddClause(clause) && root_consistent;
  }
  const SolveResult r = s.Solve();
  EXPECT_EQ(r == SolveResult::kSat, brute_sat);
  if (r == SolveResult::kSat) {
    // Verify the model actually satisfies the formula.
    for (const auto& clause : clauses) {
      bool any = false;
      for (Lit l : clause) {
        const bool val = s.ModelValue(VarOf(l));
        if (IsNegated(l) ? !val : val) any = true;
      }
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSatTest,
                         ::testing::Range<uint64_t>(1, 25));

}  // namespace
}  // namespace splitlock::sat
