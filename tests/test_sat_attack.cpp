#include <gtest/gtest.h>

#include "attack/sat_attack.hpp"
#include "circuits/c17.hpp"
#include "circuits/random_circuit.hpp"
#include "lock/atpg_lock.hpp"
#include "lock/epic.hpp"
#include "sim/metrics.hpp"

namespace splitlock::attack {
namespace {

Netlist TestCircuit(uint64_t seed, size_t gates = 400) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 16;
  spec.num_outputs = 8;
  spec.num_gates = gates;
  spec.seed = seed;
  spec.bias_cone_fraction = 0.15;
  return circuits::GenerateCircuit(spec);
}

TEST(SatAttack, RecoversEpicKeyGivenOracle) {
  // With an oracle (which split manufacturing denies!), the classical SAT
  // attack dismantles random-insertion locking quickly.
  const Netlist original = circuits::MakeC17();
  Rng rng(1);
  const lock::EpicResult locked = lock::LockWithEpic(original, 6, rng);
  const SatAttackResult r = RunSatAttack(locked.locked, original);
  EXPECT_TRUE(r.finished);
  EXPECT_TRUE(r.key_found);
  EXPECT_TRUE(r.functionally_correct);
}

TEST(SatAttack, RecoversAtpgLockKeyGivenOracle) {
  const Netlist original = TestCircuit(2);
  lock::AtpgLockOptions opts;
  opts.key_bits = 24;
  opts.seed = 2;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);
  const SatAttackResult r = RunSatAttack(locked.locked, original);
  EXPECT_TRUE(r.finished);
  EXPECT_TRUE(r.key_found);
  // The recovered key must be *functionally* correct (it may differ
  // bitwise from the designer key, e.g. in parity-padded pairs).
  EXPECT_TRUE(r.functionally_correct);
  EXPECT_GT(r.dips_used, 0u);
}

TEST(SatAttack, RecoveredKeyCanDifferBitwise) {
  // Parity-padded chains admit multiple functionally-correct keys, so the
  // SAT attack's key need not match the designer's bit-for-bit; check the
  // library reports functional correctness, not bit equality.
  const Netlist original = TestCircuit(3);
  lock::AtpgLockOptions opts;
  opts.key_bits = 16;
  opts.seed = 3;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);
  const SatAttackResult r = RunSatAttack(locked.locked, original);
  ASSERT_TRUE(r.key_found);
  EXPECT_TRUE(r.functionally_correct);
  EXPECT_EQ(r.recovered_key.size(), locked.key.size());
}

TEST(SatAttack, DipBudgetRespected) {
  const Netlist original = TestCircuit(4);
  lock::AtpgLockOptions opts;
  opts.key_bits = 24;
  opts.seed = 4;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);
  SatAttackOptions aopts;
  aopts.max_dips = 1;  // starve the attack
  const SatAttackResult r = RunSatAttack(locked.locked, original, aopts);
  if (!r.finished) {
    EXPECT_FALSE(r.key_found);
    EXPECT_LE(r.dips_used, 1u);
  }
}

TEST(SatAttack, MultiDipRoundsRecoverEquivalentKey) {
  // Wide rounds (several DIPs per stalled solve, one oracle flush) must
  // still terminate with a functionally correct key; the DIP *sequence*
  // differs from one-at-a-time, so only functional results are compared.
  const Netlist original = TestCircuit(10);
  lock::AtpgLockOptions opts;
  opts.key_bits = 24;
  opts.seed = 10;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);

  SatAttackOptions single, wide;
  single.dips_per_round = 1;
  wide.dips_per_round = 4;
  const SatAttackResult s = RunSatAttack(locked.locked, original, single);
  const SatAttackResult w = RunSatAttack(locked.locked, original, wide);
  ASSERT_TRUE(s.finished);
  ASSERT_TRUE(w.finished);
  EXPECT_TRUE(s.key_found);
  EXPECT_TRUE(w.key_found);
  EXPECT_TRUE(s.functionally_correct);
  EXPECT_TRUE(w.functionally_correct);
  // Batching can only merge rounds, never add them.
  EXPECT_LE(w.telemetry.rounds.size(), s.telemetry.rounds.size());

  // Single-DIP rounds pin every batch at exactly 1.
  EXPECT_EQ(s.telemetry.MeanDipBatch(), 1.0);
  for (const SatRoundTelemetry& round : s.telemetry.rounds) {
    EXPECT_LE(round.dip_batch, 1u);
  }
  // The wide run's per-round batches never exceed the cap, and the total
  // across rounds is exactly the DIPs spent.
  size_t batched = 0;
  for (const SatRoundTelemetry& round : w.telemetry.rounds) {
    EXPECT_LE(round.dip_batch, wide.dips_per_round);
    batched += round.dip_batch;
  }
  EXPECT_EQ(batched, w.dips_used);
}

TEST(SatAttack, WideRoundsActuallyBatch) {
  // A lock that needs many DIPs must show at least one round with batch
  // width > 1 when dips_per_round allows it — otherwise the feature is
  // silently inert. MeanDipBatch is the acceptance-criteria metric.
  const Netlist original = TestCircuit(11, 500);
  lock::AtpgLockOptions opts;
  opts.key_bits = 32;
  opts.seed = 11;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);
  SatAttackOptions aopts;
  aopts.dips_per_round = 4;
  const SatAttackResult r = RunSatAttack(locked.locked, original, aopts);
  ASSERT_TRUE(r.finished);
  ASSERT_TRUE(r.key_found);
  EXPECT_TRUE(r.functionally_correct);
  if (r.dips_used > 1) {
    EXPECT_GT(r.telemetry.MeanDipBatch(), 1.0);
  }
}

TEST(SatAttack, WideRoundsRespectDipBudget) {
  // The per-round batch is capped at the remaining budget, so max_dips
  // keeps its meaning even when dips_per_round exceeds it.
  const Netlist original = TestCircuit(4);
  lock::AtpgLockOptions opts;
  opts.key_bits = 24;
  opts.seed = 4;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);
  SatAttackOptions aopts;
  aopts.max_dips = 3;
  aopts.dips_per_round = 8;
  const SatAttackResult r = RunSatAttack(locked.locked, original, aopts);
  EXPECT_LE(r.dips_used, 3u);
}

TEST(OracleLess, KeySpaceStaysRich) {
  // Without an oracle there is nothing to prune with: sampled keys keep
  // inducing many observably distinct functions and the FEOL cannot rank
  // them — the situation Theorem 1's brute-force bound formalizes. (The
  // observable count undercounts the true class count: parity-padded pairs
  // alias, and comparator bits whose difference sets are rare may not show
  // within the sampled patterns.)
  const Netlist original = TestCircuit(5, 600);
  lock::AtpgLockOptions opts;
  opts.key_bits = 32;
  opts.seed = 5;
  opts.verify_lec = false;
  const lock::AtpgLockResult locked = lock::LockWithAtpg(original, opts);
  const OracleLessProbe probe =
      ProbeOracleLessKeySpace(locked.locked, 256, 2048, 5);
  EXPECT_EQ(probe.sampled_keys, 256u);
  EXPECT_GT(probe.distinct_functions, 16u);  // > 4 bits of visible entropy
}

TEST(OracleLess, EpicKeysAreAllVisiblyDistinctish) {
  // EPIC key-gates invert live nets outright, so nearly every sampled key
  // shows a distinct behaviour even on few patterns.
  const Netlist original = TestCircuit(6, 400);
  Rng rng(6);
  const lock::EpicResult locked = lock::LockWithEpic(original, 16, rng);
  const OracleLessProbe probe =
      ProbeOracleLessKeySpace(locked.locked, 128, 1024, 6);
  EXPECT_GT(probe.DistinctFraction(), 0.8);
}

TEST(OracleLess, UnkeyedNetlistHasOneBehavior) {
  const Netlist original = circuits::MakeC17();
  const OracleLessProbe probe = ProbeOracleLessKeySpace(original, 16, 256, 7);
  EXPECT_EQ(probe.distinct_functions, 1u);
}

}  // namespace
}  // namespace splitlock::attack
