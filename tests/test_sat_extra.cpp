// Additional SAT-solver and encoder coverage: incremental use across Solve
// calls, assumption reuse, conflict accounting, and encoder determinism —
// the usage patterns the SAT-sweeping LEC and the SAT attack lean on.
#include <gtest/gtest.h>

#include "sat/solver.hpp"
#include "sat/tseitin.hpp"
#include "util/rng.hpp"

namespace splitlock::sat {
namespace {

TEST(SatIncremental, ClausesPersistAcrossSolves) {
  Solver s;
  const Var a = s.NewVar();
  const Var b = s.NewVar();
  s.AddBinary(MakeLit(a), MakeLit(b));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  s.AddUnit(Negate(MakeLit(a)));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_FALSE(s.ModelValue(a));
  EXPECT_TRUE(s.ModelValue(b));
  s.AddUnit(Negate(MakeLit(b)));
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  // Once root-level UNSAT, it stays UNSAT.
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(SatIncremental, AssumptionsDoNotPollute) {
  // UNSAT under assumptions must not leave permanent damage.
  Solver s;
  const Var a = s.NewVar();
  const Var b = s.NewVar();
  s.AddBinary(Negate(MakeLit(a)), MakeLit(b));  // a -> b
  const std::vector<Lit> bad = {MakeLit(a), Negate(MakeLit(b))};
  EXPECT_EQ(s.Solve(bad), SolveResult::kUnsat);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(s.Solve(), SolveResult::kSat);
    EXPECT_EQ(s.Solve(bad), SolveResult::kUnsat);
  }
}

TEST(SatIncremental, AlternatingAssumptionPolarities) {
  Solver s;
  const Var x = s.NewVar();
  const Var y = s.NewVar();
  s.AddBinary(MakeLit(x), MakeLit(y));
  const std::vector<Lit> ax = {MakeLit(x)};
  const std::vector<Lit> nx = {Negate(MakeLit(x))};
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(s.Solve(ax), SolveResult::kSat);
    EXPECT_TRUE(s.ModelValue(x));
    ASSERT_EQ(s.Solve(nx), SolveResult::kSat);
    EXPECT_FALSE(s.ModelValue(x));
    EXPECT_TRUE(s.ModelValue(y));
  }
}

TEST(SatIncremental, ConflictCountMonotonic) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 30; ++i) v.push_back(s.NewVar());
  Rng rng(3);
  for (int c = 0; c < 120; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(
          MakeLit(v[rng.NextUint(v.size())], rng.NextBool()));
    }
    s.AddClause(clause);
  }
  const uint64_t before = s.conflicts();
  s.Solve();
  const uint64_t mid = s.conflicts();
  s.Solve();
  EXPECT_GE(mid, before);
  EXPECT_GE(s.conflicts(), mid);
}

TEST(Encoder, DeterministicLiteralAssignment) {
  // Two encoders fed the same structure must produce identical literals —
  // the property that makes LEC runs reproducible.
  auto build = []() {
    auto solver = std::make_unique<Solver>();
    StructuralEncoder enc(*solver);
    const Lit a = enc.FreshLit();
    const Lit b = enc.FreshLit();
    const Lit c = enc.EncodeOp(GateOp::kAnd, std::array<Lit, 2>{a, b});
    const Lit d = enc.EncodeOp(GateOp::kXor, std::array<Lit, 2>{c, a});
    const Lit e = enc.EncodeOp(GateOp::kMux, std::array<Lit, 3>{a, c, d});
    return std::tuple<Lit, Lit, Lit>(c, d, e);
  };
  EXPECT_EQ(build(), build());
}

TEST(Encoder, SharedSubexpressionAcrossNetlists) {
  // Two netlists with a common cone encoded into one solver share
  // variables for that cone (the basis of cheap miters).
  Netlist n1("n1");
  {
    const NetId a = n1.AddInput("a");
    const NetId b = n1.AddInput("b");
    n1.AddOutput(n1.AddGate(GateOp::kAnd, {a, b}), "y");
  }
  Netlist n2("n2");
  {
    const NetId a = n2.AddInput("a");
    const NetId b = n2.AddInput("b");
    const NetId x = n2.AddGate(GateOp::kAnd, {a, b});
    n2.AddOutput(n2.AddGate(GateOp::kInv, {x}), "y");
  }
  Solver solver;
  StructuralEncoder enc(solver);
  const std::vector<Lit> inputs = {enc.FreshLit(), enc.FreshLit()};
  const std::vector<Lit> o1 = enc.EncodeNetlist(n1, inputs);
  const std::vector<Lit> o2 = enc.EncodeNetlist(n2, inputs);
  EXPECT_EQ(o2[0], Negate(o1[0]));
}

TEST(Encoder, WideAndFoldsDuplicateInputs) {
  Solver solver;
  StructuralEncoder enc(solver);
  const Lit a = enc.FreshLit();
  const Lit b = enc.FreshLit();
  const Lit dup =
      enc.EncodeOp(GateOp::kAnd, std::array<Lit, 4>{a, b, a, b});
  const Lit plain = enc.EncodeOp(GateOp::kAnd, std::array<Lit, 2>{a, b});
  EXPECT_EQ(dup, plain);
  // a & ~a inside a wide AND collapses to false.
  const Lit contradiction = enc.EncodeOp(
      GateOp::kAnd, std::array<Lit, 3>{a, Negate(a), b});
  EXPECT_EQ(contradiction, enc.FalseLit());
}

TEST(Encoder, MuxNormalizations) {
  Solver solver;
  StructuralEncoder enc(solver);
  const Lit s = enc.FreshLit();
  const Lit a = enc.FreshLit();
  // MUX(s, a, a) = a regardless of the select.
  EXPECT_EQ(enc.EncodeOp(GateOp::kMux, std::array<Lit, 3>{s, a, a}), a);
  // MUX(true, a, b) = b; MUX(false, a, b) = a.
  const Lit b = enc.FreshLit();
  EXPECT_EQ(enc.EncodeOp(GateOp::kMux,
                         std::array<Lit, 3>{enc.TrueLit(), a, b}),
            b);
  EXPECT_EQ(enc.EncodeOp(GateOp::kMux,
                         std::array<Lit, 3>{enc.FalseLit(), a, b}),
            a);
  // MUX(s, a, ~a) degenerates to XNOR/XOR of (s, a).
  const Lit x = enc.EncodeOp(GateOp::kMux,
                             std::array<Lit, 3>{s, a, Negate(a)});
  const Lit ref = enc.EncodeOp(GateOp::kXor, std::array<Lit, 2>{s, a});
  EXPECT_EQ(x, ref);
}

}  // namespace
}  // namespace splitlock::sat
