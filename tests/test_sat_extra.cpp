// Additional SAT-solver and encoder coverage: incremental use across Solve
// calls, assumption reuse, conflict accounting, encoder determinism, and
// the Clone()/diversification contract the portfolio attack builds on.
#include <gtest/gtest.h>

#include <atomic>

#include "sat/solver.hpp"
#include "sat/tseitin.hpp"
#include "util/rng.hpp"

namespace splitlock::sat {
namespace {

// Random 3-CNF over `vars` variables. Low clause/var ratio keeps the
// instances satisfiable with overwhelming likelihood.
Solver RandomCnf(uint64_t seed, int vars, int clauses,
                 std::vector<std::vector<Lit>>* out_clauses = nullptr) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < vars; ++i) v.push_back(s.NewVar());
  Rng rng(seed);
  for (int c = 0; c < clauses; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(MakeLit(v[rng.NextUint(v.size())], rng.NextBool()));
    }
    if (out_clauses) out_clauses->push_back(clause);
    s.AddClause(clause);
  }
  return s;
}

bool ModelSatisfies(const Solver& s,
                    const std::vector<std::vector<Lit>>& clauses) {
  for (const std::vector<Lit>& clause : clauses) {
    bool sat = false;
    for (const Lit l : clause) {
      if (s.ModelValue(VarOf(l)) != IsNegated(l)) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

TEST(SatIncremental, ClausesPersistAcrossSolves) {
  Solver s;
  const Var a = s.NewVar();
  const Var b = s.NewVar();
  s.AddBinary(MakeLit(a), MakeLit(b));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  s.AddUnit(Negate(MakeLit(a)));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_FALSE(s.ModelValue(a));
  EXPECT_TRUE(s.ModelValue(b));
  s.AddUnit(Negate(MakeLit(b)));
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  // Once root-level UNSAT, it stays UNSAT.
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(SatIncremental, AssumptionsDoNotPollute) {
  // UNSAT under assumptions must not leave permanent damage.
  Solver s;
  const Var a = s.NewVar();
  const Var b = s.NewVar();
  s.AddBinary(Negate(MakeLit(a)), MakeLit(b));  // a -> b
  const std::vector<Lit> bad = {MakeLit(a), Negate(MakeLit(b))};
  EXPECT_EQ(s.Solve(bad), SolveResult::kUnsat);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(s.Solve(), SolveResult::kSat);
    EXPECT_EQ(s.Solve(bad), SolveResult::kUnsat);
  }
}

TEST(SatIncremental, AlternatingAssumptionPolarities) {
  Solver s;
  const Var x = s.NewVar();
  const Var y = s.NewVar();
  s.AddBinary(MakeLit(x), MakeLit(y));
  const std::vector<Lit> ax = {MakeLit(x)};
  const std::vector<Lit> nx = {Negate(MakeLit(x))};
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(s.Solve(ax), SolveResult::kSat);
    EXPECT_TRUE(s.ModelValue(x));
    ASSERT_EQ(s.Solve(nx), SolveResult::kSat);
    EXPECT_FALSE(s.ModelValue(x));
    EXPECT_TRUE(s.ModelValue(y));
  }
}

TEST(SatIncremental, ConflictCountMonotonic) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 30; ++i) v.push_back(s.NewVar());
  Rng rng(3);
  for (int c = 0; c < 120; ++c) {
    std::vector<Lit> clause;
    for (int k = 0; k < 3; ++k) {
      clause.push_back(
          MakeLit(v[rng.NextUint(v.size())], rng.NextBool()));
    }
    s.AddClause(clause);
  }
  const uint64_t before = s.conflicts();
  s.Solve();
  const uint64_t mid = s.conflicts();
  s.Solve();
  EXPECT_GE(mid, before);
  EXPECT_GE(s.conflicts(), mid);
}

TEST(Encoder, DeterministicLiteralAssignment) {
  // Two encoders fed the same structure must produce identical literals —
  // the property that makes LEC runs reproducible.
  auto build = []() {
    auto solver = std::make_unique<Solver>();
    StructuralEncoder enc(*solver);
    const Lit a = enc.FreshLit();
    const Lit b = enc.FreshLit();
    const Lit c = enc.EncodeOp(GateOp::kAnd, std::array<Lit, 2>{a, b});
    const Lit d = enc.EncodeOp(GateOp::kXor, std::array<Lit, 2>{c, a});
    const Lit e = enc.EncodeOp(GateOp::kMux, std::array<Lit, 3>{a, c, d});
    return std::tuple<Lit, Lit, Lit>(c, d, e);
  };
  EXPECT_EQ(build(), build());
}

TEST(Encoder, SharedSubexpressionAcrossNetlists) {
  // Two netlists with a common cone encoded into one solver share
  // variables for that cone (the basis of cheap miters).
  Netlist n1("n1");
  {
    const NetId a = n1.AddInput("a");
    const NetId b = n1.AddInput("b");
    n1.AddOutput(n1.AddGate(GateOp::kAnd, {a, b}), "y");
  }
  Netlist n2("n2");
  {
    const NetId a = n2.AddInput("a");
    const NetId b = n2.AddInput("b");
    const NetId x = n2.AddGate(GateOp::kAnd, {a, b});
    n2.AddOutput(n2.AddGate(GateOp::kInv, {x}), "y");
  }
  Solver solver;
  StructuralEncoder enc(solver);
  const std::vector<Lit> inputs = {enc.FreshLit(), enc.FreshLit()};
  const std::vector<Lit> o1 = enc.EncodeNetlist(n1, inputs);
  const std::vector<Lit> o2 = enc.EncodeNetlist(n2, inputs);
  EXPECT_EQ(o2[0], Negate(o1[0]));
}

TEST(Encoder, WideAndFoldsDuplicateInputs) {
  Solver solver;
  StructuralEncoder enc(solver);
  const Lit a = enc.FreshLit();
  const Lit b = enc.FreshLit();
  const Lit dup =
      enc.EncodeOp(GateOp::kAnd, std::array<Lit, 4>{a, b, a, b});
  const Lit plain = enc.EncodeOp(GateOp::kAnd, std::array<Lit, 2>{a, b});
  EXPECT_EQ(dup, plain);
  // a & ~a inside a wide AND collapses to false.
  const Lit contradiction = enc.EncodeOp(
      GateOp::kAnd, std::array<Lit, 3>{a, Negate(a), b});
  EXPECT_EQ(contradiction, enc.FalseLit());
}

// --- Clone() + diversification (the portfolio attack's substrate) ----------

TEST(SolverClone, CloneSolvesIdenticallyOnRandomCnf) {
  for (uint64_t seed : {11u, 12u, 13u, 14u}) {
    std::vector<std::vector<Lit>> clauses;
    Solver original = RandomCnf(seed, 40, 150, &clauses);
    Solver clone = original.Clone();
    const SolveResult a = original.Solve();
    const SolveResult b = clone.Solve();
    ASSERT_EQ(a, b) << "seed " << seed;
    // Identical config => identical search tree => identical conflicts and
    // (when SAT) identical models.
    EXPECT_EQ(original.conflicts(), clone.conflicts()) << "seed " << seed;
    if (a == SolveResult::kSat) {
      for (Var v = 0; v < original.NumVars(); ++v) {
        ASSERT_EQ(original.ModelValue(v), clone.ModelValue(v))
            << "seed " << seed << " var " << v;
      }
      EXPECT_TRUE(ModelSatisfies(clone, clauses));
    }
  }
}

TEST(SolverClone, CloneCarriesLearntClausesAndRemainsIdentical) {
  // Clone mid-way: after the original has already solved (and learnt), a
  // clone must behave identically on the *next* query too.
  std::vector<std::vector<Lit>> clauses;
  Solver original = RandomCnf(21, 40, 150, &clauses);
  ASSERT_EQ(original.Solve(), SolveResult::kSat);
  Solver clone = original.Clone();
  const std::vector<Lit> assumption = {MakeLit(0, original.ModelValue(0))};
  const SolveResult a = original.Solve(assumption);
  const SolveResult b = clone.Solve(assumption);
  ASSERT_EQ(a, b);
  EXPECT_EQ(original.conflicts(), clone.conflicts());
  if (a == SolveResult::kSat) {
    for (Var v = 0; v < original.NumVars(); ++v) {
      ASSERT_EQ(original.ModelValue(v), clone.ModelValue(v));
    }
  }
}

TEST(SolverClone, CloneIsIndependentOfTheOriginal) {
  Solver original;
  const Var a = original.NewVar();
  const Var b = original.NewVar();
  original.AddBinary(MakeLit(a), MakeLit(b));
  Solver clone = original.Clone();
  clone.AddUnit(Negate(MakeLit(a)));
  clone.AddUnit(Negate(MakeLit(b)));
  EXPECT_EQ(clone.Solve(), SolveResult::kUnsat);
  EXPECT_EQ(original.Solve(), SolveResult::kSat);
}

TEST(SolverClone, DivergesOnlyUnderDiversificationKnobs) {
  // An unconstrained variable pins down the polarity policy exactly: saved
  // phase (and kFalse) assign it false, kTrue assigns it true.
  Solver s;
  const Var free_var = s.NewVar();
  const Var x = s.NewVar();
  const Var y = s.NewVar();
  s.AddBinary(MakeLit(x), MakeLit(y));

  Solver same = s.Clone();
  ASSERT_EQ(same.Solve(), SolveResult::kSat);
  Solver base = s.Clone();
  ASSERT_EQ(base.Solve(), SolveResult::kSat);
  EXPECT_EQ(base.ModelValue(free_var), same.ModelValue(free_var));

  Solver flipped = s.Clone();
  SolverConfig config;
  config.polarity = PolarityMode::kTrue;
  flipped.SetConfig(config);
  ASSERT_EQ(flipped.Solve(), SolveResult::kSat);
  EXPECT_TRUE(flipped.ModelValue(free_var));
  EXPECT_FALSE(base.ModelValue(free_var));
}

TEST(SolverClone, DiversifiedClonesStillSolveCorrectly) {
  std::vector<std::vector<Lit>> clauses;
  Solver original = RandomCnf(31, 50, 180, &clauses);
  const SolveResult ref = original.Clone().Solve();
  for (size_t i = 1; i <= 4; ++i) {
    Solver diversified = original.Clone();
    SolverConfig config;
    config.branch_seed = 1000 + i;
    config.polarity = i % 2 ? PolarityMode::kRandom : PolarityMode::kTrue;
    config.random_branch_freq = 0.05 * static_cast<double>(i);
    config.restart_unit = 32ULL << i;
    diversified.SetConfig(config);
    const SolveResult r = diversified.Solve();
    ASSERT_EQ(r, ref) << "config " << i;
    if (r == SolveResult::kSat) {
      EXPECT_TRUE(ModelSatisfies(diversified, clauses)) << "config " << i;
    }
  }
}

TEST(SolverClone, DiversifiedSolveIsReproducible) {
  // Same clone + same config => identical conflicts and model, even with
  // random branching: the diversification stream is deterministic.
  std::vector<std::vector<Lit>> clauses;
  Solver original = RandomCnf(41, 50, 180, &clauses);
  SolverConfig config;
  config.branch_seed = 77;
  config.polarity = PolarityMode::kRandom;
  config.random_branch_freq = 0.2;
  Solver a = original.Clone();
  Solver b = original.Clone();
  a.SetConfig(config);
  b.SetConfig(config);
  const SolveResult ra = a.Solve();
  const SolveResult rb = b.Solve();
  ASSERT_EQ(ra, rb);
  EXPECT_EQ(a.conflicts(), b.conflicts());
  if (ra == SolveResult::kSat) {
    for (Var v = 0; v < a.NumVars(); ++v) {
      ASSERT_EQ(a.ModelValue(v), b.ModelValue(v));
    }
  }
}

TEST(SolverAbort, PreSetAbortFlagYieldsUnknown) {
  Solver s = RandomCnf(51, 30, 100);
  std::atomic<bool> abort{true};
  s.SetAbortFlag(&abort);
  EXPECT_EQ(s.Solve(), SolveResult::kUnknown);
  // Detached again, the solve completes.
  s.SetAbortFlag(nullptr);
  EXPECT_NE(s.Solve(), SolveResult::kUnknown);
}

TEST(SolverAbort, CloneDoesNotInheritAbortFlag) {
  Solver s = RandomCnf(52, 30, 100);
  std::atomic<bool> abort{true};
  s.SetAbortFlag(&abort);
  Solver clone = s.Clone();
  EXPECT_NE(clone.Solve(), SolveResult::kUnknown);
  EXPECT_EQ(s.Solve(), SolveResult::kUnknown);
}

TEST(Encoder, MuxNormalizations) {
  Solver solver;
  StructuralEncoder enc(solver);
  const Lit s = enc.FreshLit();
  const Lit a = enc.FreshLit();
  // MUX(s, a, a) = a regardless of the select.
  EXPECT_EQ(enc.EncodeOp(GateOp::kMux, std::array<Lit, 3>{s, a, a}), a);
  // MUX(true, a, b) = b; MUX(false, a, b) = a.
  const Lit b = enc.FreshLit();
  EXPECT_EQ(enc.EncodeOp(GateOp::kMux,
                         std::array<Lit, 3>{enc.TrueLit(), a, b}),
            b);
  EXPECT_EQ(enc.EncodeOp(GateOp::kMux,
                         std::array<Lit, 3>{enc.FalseLit(), a, b}),
            a);
  // MUX(s, a, ~a) degenerates to XNOR/XOR of (s, a).
  const Lit x = enc.EncodeOp(GateOp::kMux,
                             std::array<Lit, 3>{s, a, Negate(a)});
  const Lit ref = enc.EncodeOp(GateOp::kXor, std::array<Lit, 2>{s, a});
  EXPECT_EQ(x, ref);
}

}  // namespace
}  // namespace splitlock::sat
