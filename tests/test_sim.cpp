#include <gtest/gtest.h>

#include <cmath>

#include "circuits/c17.hpp"
#include "circuits/random_circuit.hpp"
#include "sim/simulator.hpp"

namespace splitlock {
namespace {

TEST(Simulator, C17TruthSamples) {
  const Netlist nl = circuits::MakeC17();
  Simulator sim(nl);
  // Pattern lanes: all-zeros and all-ones checks.
  // G22 = NAND(G10, G16); with all inputs 0: G10=1, G11=1, G16=1 -> G22=0.
  for (GateId g : nl.inputs()) sim.SetSourceWord(g, 0);
  sim.Run();
  EXPECT_EQ(sim.OutputWord(0) & 1, 0u);  // G22
  EXPECT_EQ(sim.OutputWord(1) & 1, 0u);  // G23
  // All inputs 1: G10 = NAND(1,1) = 0 -> G22 = 1. G11 = 0, G16 = 1,
  // G19 = 1, G23 = NAND(1,1) = 0.
  for (GateId g : nl.inputs()) sim.SetSourceWord(g, ~0ULL);
  sim.Run();
  EXPECT_EQ(sim.OutputWord(0) & 1, 1u);
  EXPECT_EQ(sim.OutputWord(1) & 1, 0u);
}

TEST(Simulator, LanesAreIndependent) {
  const Netlist nl = circuits::MakeC17();
  Simulator sim(nl);
  // Lane 0: all zeros; lane 1: all ones.
  for (GateId g : nl.inputs()) sim.SetSourceWord(g, 0b10);
  sim.Run();
  EXPECT_EQ(sim.OutputWord(0) & 0b11, 0b10u);
}

TEST(Simulator, KeyBitsBindKeyInputs) {
  Netlist nl("k");
  const NetId a = nl.AddInput("a");
  const NetId k = nl.AddGate(GateOp::kKeyIn, {}, "key_0");
  const NetId y = nl.AddGate(GateOp::kXor, {a, k});
  nl.AddOutput(y, "y");

  Simulator sim(nl);
  const std::vector<uint8_t> key0 = {0};
  const std::vector<uint8_t> key1 = {1};
  sim.SetSourceWord(nl.inputs()[0], 0b01);
  sim.SetKeyBits(key0);
  sim.Run();
  EXPECT_EQ(sim.OutputWord(0) & 0b11, 0b01u);  // transparent
  sim.SetKeyBits(key1);
  sim.Run();
  EXPECT_EQ(sim.OutputWord(0) & 0b11, 0b10u);  // inverting
}

TEST(Simulator, TieCellsProduceConstants) {
  Netlist nl("tie");
  const NetId a = nl.AddInput("a");
  const NetId hi = nl.AddGate(GateOp::kTieHi, {});
  const NetId lo = nl.AddGate(GateOp::kTieLo, {});
  nl.AddOutput(nl.AddGate(GateOp::kAnd, {a, hi}), "y1");
  nl.AddOutput(nl.AddGate(GateOp::kOr, {a, lo}), "y2");
  Simulator sim(nl);
  sim.SetSourceWord(nl.inputs()[0], 0b10);
  sim.Run();
  EXPECT_EQ(sim.OutputWord(0) & 0b11, 0b10u);
  EXPECT_EQ(sim.OutputWord(1) & 0b11, 0b10u);
}

TEST(SignalProbabilities, UniformInputsNearHalf) {
  Netlist nl("p");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId y = nl.AddGate(GateOp::kAnd, {a, b});
  nl.AddOutput(y, "y");
  const std::vector<double> probs = EstimateSignalProbabilities(nl, 16384, 5);
  EXPECT_NEAR(probs[a], 0.5, 0.03);
  EXPECT_NEAR(probs[b], 0.5, 0.03);
  EXPECT_NEAR(probs[y], 0.25, 0.03);
}

TEST(SignalProbabilities, WideAndIsStronglyBiased) {
  Netlist nl("wide");
  std::vector<NetId> ins;
  for (int i = 0; i < 8; ++i) ins.push_back(nl.AddInput("i" + std::to_string(i)));
  NetId acc = nl.AddGate(GateOp::kAnd,
                         std::array<NetId, 4>{ins[0], ins[1], ins[2], ins[3]});
  NetId acc2 = nl.AddGate(GateOp::kAnd,
                          std::array<NetId, 4>{ins[4], ins[5], ins[6], ins[7]});
  const NetId y = nl.AddGate(GateOp::kAnd, {acc, acc2});
  nl.AddOutput(y, "y");
  const std::vector<double> probs = EstimateSignalProbabilities(nl, 65536, 7);
  EXPECT_NEAR(probs[y], 1.0 / 256.0, 0.01);
}

TEST(ToggleRates, ConstantNetNeverToggles) {
  Netlist nl("t");
  const NetId a = nl.AddInput("a");
  const NetId hi = nl.AddGate(GateOp::kTieHi, {});
  const NetId y = nl.AddGate(GateOp::kAnd, {a, hi});
  nl.AddOutput(y, "y");
  const std::vector<double> rates = EstimateToggleRates(nl, 4096, 3);
  EXPECT_DOUBLE_EQ(rates[hi], 0.0);
  EXPECT_NEAR(rates[a], 0.5, 0.05);
  EXPECT_NEAR(rates[y], 0.5, 0.05);
}

TEST(ToggleRates, XorOfIndependentInputsTogglesMore) {
  Netlist nl("x");
  const NetId a = nl.AddInput("a");
  const NetId b = nl.AddInput("b");
  const NetId and_net = nl.AddGate(GateOp::kAnd, {a, b});
  const NetId xor_net = nl.AddGate(GateOp::kXor, {a, b});
  nl.AddOutput(and_net, "y1");
  nl.AddOutput(xor_net, "y2");
  const std::vector<double> rates = EstimateToggleRates(nl, 16384, 11);
  // AND toggles with rate 2*(1/4)*(3/4) = 0.375; XOR with 0.5.
  EXPECT_NEAR(rates[and_net], 0.375, 0.03);
  EXPECT_NEAR(rates[xor_net], 0.5, 0.03);
}

TEST(Simulator, GeneratedCircuitRunsDeterministically) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 16;
  spec.num_outputs = 8;
  spec.num_gates = 300;
  spec.seed = 99;
  const Netlist nl = circuits::GenerateCircuit(spec);
  Simulator s1(nl);
  Simulator s2(nl);
  Rng r1(5);
  Rng r2(5);
  s1.SetRandomInputs(r1);
  s2.SetRandomInputs(r2);
  s1.Run();
  s2.Run();
  for (size_t o = 0; o < nl.outputs().size(); ++o) {
    EXPECT_EQ(s1.OutputWord(o), s2.OutputWord(o));
  }
}

}  // namespace
}  // namespace splitlock
