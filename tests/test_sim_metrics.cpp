#include <gtest/gtest.h>

#include "circuits/c17.hpp"
#include "circuits/random_circuit.hpp"
#include "sim/metrics.hpp"

namespace splitlock {
namespace {

Netlist InvertedOutputCopy(const Netlist& nl, size_t which_output) {
  // Same circuit with one output complemented.
  Netlist out = nl;
  const GateId po = out.outputs()[which_output];
  const NetId observed = out.gate(po).fanins[0];
  const NetId inv = out.AddGate(GateOp::kInv, {observed});
  out.ReplaceFanin(po, 0, inv);
  return out;
}

TEST(CompareFunctional, IdenticalNetlistsZeroDiff) {
  const Netlist nl = circuits::MakeC17();
  const FunctionalDiff d = CompareFunctional(nl, nl, 1000, 1);
  EXPECT_DOUBLE_EQ(d.hd_percent, 0.0);
  EXPECT_DOUBLE_EQ(d.oer_percent, 0.0);
  EXPECT_EQ(d.patterns, 1000u);
}

TEST(CompareFunctional, OneInvertedOutputOfTwo) {
  const Netlist nl = circuits::MakeC17();
  const Netlist broken = InvertedOutputCopy(nl, 0);
  const FunctionalDiff d = CompareFunctional(nl, broken, 2048, 2);
  // One of two output bits always differs: HD = 50%, OER = 100%.
  EXPECT_NEAR(d.hd_percent, 50.0, 0.01);
  EXPECT_NEAR(d.oer_percent, 100.0, 0.01);
}

TEST(CompareFunctional, BothOutputsInverted) {
  const Netlist nl = circuits::MakeC17();
  const Netlist broken = InvertedOutputCopy(InvertedOutputCopy(nl, 0), 1);
  const FunctionalDiff d = CompareFunctional(nl, broken, 2048, 3);
  EXPECT_NEAR(d.hd_percent, 100.0, 0.01);
  EXPECT_NEAR(d.oer_percent, 100.0, 0.01);
}

TEST(CompareFunctional, PartialWordPatternCountsExact) {
  const Netlist nl = circuits::MakeC17();
  const Netlist broken = InvertedOutputCopy(nl, 0);
  // 100 is not a multiple of 64; masking must keep the rates exact.
  const FunctionalDiff d = CompareFunctional(nl, broken, 100, 4);
  EXPECT_NEAR(d.hd_percent, 50.0, 0.01);
  EXPECT_NEAR(d.oer_percent, 100.0, 0.01);
}

TEST(RandomPatternsAgree, DetectsEquivalence) {
  const Netlist nl = circuits::MakeC17();
  EXPECT_TRUE(RandomPatternsAgree(nl, nl, 512, 5));
}

TEST(RandomPatternsAgree, DetectsDifference) {
  const Netlist nl = circuits::MakeC17();
  const Netlist broken = InvertedOutputCopy(nl, 1);
  EXPECT_FALSE(RandomPatternsAgree(nl, broken, 512, 6));
}

TEST(CompareFunctional, KeyBindingsRespected) {
  Netlist plain("p");
  const NetId a = plain.AddInput("a");
  plain.AddOutput(a, "y");

  Netlist keyed("k");
  const NetId ka = keyed.AddInput("a");
  const NetId k0 = keyed.AddGate(GateOp::kKeyIn, {}, "key_0");
  keyed.AddOutput(keyed.AddGate(GateOp::kXor, {ka, k0}), "y");

  const std::vector<uint8_t> good = {0};
  const std::vector<uint8_t> bad = {1};
  EXPECT_TRUE(RandomPatternsAgree(plain, keyed, 256, 7, {}, good));
  const FunctionalDiff d = CompareFunctional(plain, keyed, 256, 7, {}, bad);
  EXPECT_NEAR(d.hd_percent, 100.0, 0.01);
}

TEST(CompareFunctional, SubtleDifferenceLowHd) {
  // y = a AND b vs y = a AND b AND c: differ only when a=b=1, c=0 (1/8).
  Netlist lhs("l");
  {
    const NetId a = lhs.AddInput("a");
    const NetId b = lhs.AddInput("b");
    lhs.AddInput("c");
    lhs.AddOutput(lhs.AddGate(GateOp::kAnd, {a, b}), "y");
  }
  Netlist rhs("r");
  {
    const NetId a = rhs.AddInput("a");
    const NetId b = rhs.AddInput("b");
    const NetId c = rhs.AddInput("c");
    rhs.AddOutput(rhs.AddGate(GateOp::kAnd, {a, b, c}), "y");
  }
  const FunctionalDiff d = CompareFunctional(lhs, rhs, 1 << 16, 8);
  EXPECT_NEAR(d.hd_percent, 12.5, 0.6);
  EXPECT_NEAR(d.oer_percent, 12.5, 0.6);
}

}  // namespace
}  // namespace splitlock
