#include <gtest/gtest.h>

#include <memory>

#include "circuits/random_circuit.hpp"
#include "lock/atpg_lock.hpp"
#include "lock/key.hpp"
#include "phys/placer.hpp"
#include "phys/router.hpp"
#include "sim/metrics.hpp"
#include "split/split.hpp"

namespace splitlock::split {
namespace {

struct Fixture {
  // Heap-held so the layout's netlist pointer survives moves of Fixture.
  std::unique_ptr<Netlist> netlist;
  phys::Layout layout;
};

Fixture MakeRouted(uint64_t seed, bool locked, bool lift) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 20;
  spec.num_outputs = 10;
  spec.num_gates = 500;
  spec.seed = seed;
  Netlist nl = circuits::GenerateCircuit(spec);
  if (locked) {
    lock::AtpgLockOptions lopts;
    lopts.key_bits = 24;
    lopts.seed = seed;
    lopts.verify_lec = false;
    const lock::AtpgLockResult r = lock::LockWithAtpg(nl, lopts);
    nl = lock::RealizeKeyAsTies(r.locked, r.key);
  }
  Fixture f{std::make_unique<Netlist>(std::move(nl)), {}};
  phys::PlacerOptions popts;
  popts.seed = seed;
  popts.moves_per_cell = 15;
  // Secure (lifted) fixtures randomize TIE cells; naive ones anneal them
  // next to their key-gates like any other cell.
  popts.randomize_tie_cells = lift;
  f.layout = phys::PlaceDesign(*f.netlist, phys::Tech::Nangate45Like(), popts);
  phys::RouterOptions ropts;
  ropts.seed = seed;
  ropts.route_key_nets_as_regular = !lift;
  phys::RouteDesign(f.layout, ropts);
  if (lift) phys::LiftKeyNets(f.layout, *f.netlist, 5, seed);
  return f;
}

TEST(Split, IntactNetsAreNotReported) {
  const Fixture f = MakeRouted(1, false, false);
  const FeolView feol = SplitLayout(f.layout, 4);
  for (const SinkStub& stub : feol.sink_stubs) {
    // Every reported stub's connection really crosses the split layer.
    bool crosses = false;
    for (const phys::ConnRoute& conn : f.layout.routes[stub.true_net].conns) {
      if (conn.sink == stub.sink) {
        for (int l : conn.hop_layers) {
          if (l > 4) crosses = true;
        }
      }
    }
    EXPECT_TRUE(crosses);
  }
}

TEST(Split, HigherSplitBreaksFewerNets) {
  const Fixture f = MakeRouted(2, false, false);
  const FeolView at_m4 = SplitLayout(f.layout, 4);
  const FeolView at_m6 = SplitLayout(f.layout, 6);
  EXPECT_GT(at_m4.sink_stubs.size(), at_m6.sink_stubs.size());
  EXPECT_GT(at_m4.driver_stubs.size(), at_m6.driver_stubs.size());
}

TEST(Split, DriverStubsMatchBrokenNets) {
  const Fixture f = MakeRouted(3, false, false);
  const FeolView feol = SplitLayout(f.layout, 4);
  size_t broken = 0;
  for (NetId n = 0; n < f.netlist->NumNets(); ++n) {
    if (feol.net_broken[n]) ++broken;
  }
  EXPECT_EQ(feol.driver_stubs.size(), broken);
  for (const DriverStub& d : feol.driver_stubs) {
    EXPECT_TRUE(feol.net_broken[d.net]);
    EXPECT_FALSE(d.ascents.empty());
    EXPECT_EQ(d.driver, f.netlist->DriverOf(d.net));
  }
}

TEST(Split, LiftedKeyNetsAlwaysBreakWithPinStubs) {
  Fixture f = MakeRouted(4, true, true);
  const FeolView feol = SplitLayout(f.layout, 4);
  const std::vector<NetId> key_nets = phys::KeyNetsOf(*f.netlist);
  ASSERT_FALSE(key_nets.empty());
  for (NetId kn : key_nets) {
    EXPECT_TRUE(feol.net_broken[kn]) << "key-net survived the split";
  }
  // Key-net stubs sit exactly on the cell pins: no FEOL routing hints.
  for (const SinkStub& stub : feol.sink_stubs) {
    const GateId d = f.netlist->DriverOf(stub.true_net);
    if (!f.netlist->gate(d).HasFlag(kFlagTie)) continue;
    EXPECT_EQ(stub.position, f.layout.PinOf(stub.sink.gate));
    EXPECT_EQ(stub.hint_toward, stub.position);
  }
  for (const DriverStub& drv : feol.driver_stubs) {
    if (!f.netlist->gate(drv.driver).HasFlag(kFlagTie)) continue;
    ASSERT_EQ(drv.ascents.size(), 1u);
    EXPECT_EQ(drv.ascents[0], f.layout.PinOf(drv.driver));
  }
}

TEST(Split, UnliftedKeyNetsCanStayInFeol) {
  Fixture f = MakeRouted(5, true, false);  // naive: key-nets routed low
  const FeolView feol = SplitLayout(f.layout, 6);
  const std::vector<NetId> key_nets = phys::KeyNetsOf(*f.netlist);
  size_t in_feol = 0;
  for (NetId kn : key_nets) {
    if (!feol.net_broken[kn]) ++in_feol;
  }
  // Naive placement puts TIE cells near their key-gates, so most key-nets
  // are short and routed on low metals: the attacker reads them directly.
  EXPECT_GT(in_feol, key_nets.size() / 2);
}

TEST(Split, RecoveredWithTruthIsIdentical) {
  const Fixture f = MakeRouted(6, false, false);
  const FeolView feol = SplitLayout(f.layout, 4);
  Assignment truth(feol.sink_stubs.size());
  for (size_t i = 0; i < feol.sink_stubs.size(); ++i) {
    truth[i] = feol.sink_stubs[i].true_net;
  }
  const Netlist recovered = BuildRecoveredNetlist(feol, truth);
  EXPECT_EQ(recovered.Validate(), "");
  EXPECT_TRUE(RandomPatternsAgree(*f.netlist, recovered, 1024, 6));
}

TEST(Split, WrongAssignmentChangesFunction) {
  const Fixture f = MakeRouted(7, false, false);
  const FeolView feol = SplitLayout(f.layout, 4);
  ASSERT_GT(feol.sink_stubs.size(), 4u);
  Assignment scrambled(feol.sink_stubs.size());
  // Rotate the truth by one broken net: almost surely wrong somewhere.
  for (size_t i = 0; i < feol.sink_stubs.size(); ++i) {
    scrambled[i] =
        feol.driver_stubs[(i + 1) % feol.driver_stubs.size()].net;
  }
  const Netlist recovered = BuildRecoveredNetlist(feol, scrambled);
  EXPECT_FALSE(RandomPatternsAgree(*f.netlist, recovered, 1024, 7));
}

TEST(Split, SinkStubCountMatchesBrokenConnections) {
  const Fixture f = MakeRouted(8, false, false);
  const FeolView feol = SplitLayout(f.layout, 4);
  size_t expected = 0;
  for (NetId n = 0; n < f.netlist->NumNets(); ++n) {
    for (const phys::ConnRoute& conn : f.layout.routes[n].conns) {
      for (int l : conn.hop_layers) {
        if (l > 4) {
          ++expected;
          break;
        }
      }
    }
  }
  EXPECT_EQ(feol.sink_stubs.size(), expected);
}

}  // namespace
}  // namespace splitlock::split
