// The persistent result store: JSON parsing, record round-trips, atomic
// insert/lookup, corruption tolerance, and the golden store-key hashes.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "attack/engine.hpp"
#include "core/flow.hpp"
#include "exec/parallel.hpp"
#include "store/result_store.hpp"
#include "util/json.hpp"

namespace splitlock::store {
namespace {

namespace fs = std::filesystem;

// Fresh per-test store directory under the system temp dir.
class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("splitlock_store_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

CampaignRecord SampleRecord() {
  CampaignRecord r;
  r.name = "b14";
  r.ok = true;
  r.broken_connections = 123;
  r.key_bits = 128;
  r.logic_gates = 2456;
  r.die_area_um2 = 1234.5;
  r.power_uw = 88.25;
  r.critical_path_ps = 901.0 / 3.0;  // not exactly representable in decimal
  r.regular_ccr_percent = 14.5;
  r.key_logical_ccr_percent = 51.2;
  r.key_physical_ccr_percent = 0.5;
  r.pnr_percent = 7.0;
  r.hd_percent = 49.5;
  r.oer_percent = 100.0;
  r.score_patterns = 4096;
  AttackRecord a;
  a.engine = "proximity";
  a.config = "proximity";
  a.ok = true;
  a.counters["candidates"] = 17;
  a.elapsed_s = 1.5;
  r.attacks.push_back(a);
  r.lock_s = 2.25;
  r.place_s = 3.5;
  r.elapsed_s = 9.75;
  return r;
}

StoreKey SampleKey() {
  StoreKey key;
  key.suite = "itc/b14";
  key.scale = CanonicalDouble(0.25);
  key.flow_hash = 0x0123456789abcdefULL;
  return key;
}

// An attack identity to file records under SampleKey().
constexpr uint64_t kSampleAttackHash = 0xfedcba9876543210ULL;

FlowRecord SampleFlowRecord() {
  FlowRecord r;
  r.name = "b14";
  r.ok = true;
  r.broken_connections = 123;
  r.key_bits = 128;
  r.logic_gates = 2456;
  r.die_area_um2 = 1234.5;
  r.power_uw = 88.25;
  r.critical_path_ps = 901.0 / 3.0;  // not exactly representable in decimal
  r.lock_s = 2.25;
  r.place_s = 3.5;
  r.elapsed_s = 9.75;
  return r;
}

AttackRecord SampleAttackRecord() {
  AttackRecord a;
  a.engine = "proximity";
  a.config = "proximity";
  a.ok = true;
  a.counters["candidates"] = 17;
  a.has_score = true;
  a.regular_ccr_percent = 14.5;
  a.key_logical_ccr_percent = 51.2;
  a.key_physical_ccr_percent = 0.5;
  a.pnr_percent = 7.0;
  a.hd_percent = 49.5;
  a.oer_percent = 100.0;
  a.score_patterns = 4096;
  a.elapsed_s = 1.5;
  return a;
}

// --- JSON parser ------------------------------------------------------------

TEST(Json, ParsesScalarsObjectsArrays) {
  const auto v = util::ParseJson(
      R"({"a":1.5,"b":"x\n\"yz","c":[true,false,null],"d":{"e":-2e3}})");
  ASSERT_TRUE(v.has_value());
  EXPECT_DOUBLE_EQ(v->GetNumber("a", 0), 1.5);
  EXPECT_EQ(v->GetString("b", ""), "x\n\"yz");
  const util::JsonValue* c = v->Get("c");
  ASSERT_NE(c, nullptr);
  ASSERT_EQ(c->array.size(), 3u);
  EXPECT_TRUE(c->array[0].boolean);
  EXPECT_EQ(c->array[2].type, util::JsonValue::Type::kNull);
  ASSERT_NE(v->Get("d"), nullptr);
  EXPECT_DOUBLE_EQ(v->Get("d")->GetNumber("e", 0), -2000.0);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(util::ParseJson("").has_value());
  EXPECT_FALSE(util::ParseJson("{").has_value());
  EXPECT_FALSE(util::ParseJson("{\"a\":1,}").has_value());
  EXPECT_FALSE(util::ParseJson("[1 2]").has_value());
  EXPECT_FALSE(util::ParseJson("\"unterminated").has_value());
  EXPECT_FALSE(util::ParseJson("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(util::ParseJson("nul").has_value());
}

TEST(Json, HexU64RoundTrips) {
  for (const uint64_t v :
       {0ULL, 1ULL, 0xdeadbeefULL, 0xffffffffffffffffULL}) {
    EXPECT_EQ(util::ParseHexU64(util::HexU64(v)), v);
  }
  EXPECT_FALSE(util::ParseHexU64("").has_value());
  EXPECT_FALSE(util::ParseHexU64("xyz").has_value());
  EXPECT_FALSE(util::ParseHexU64("00000000000000000").has_value());  // 17
}

// --- Record round-trip ------------------------------------------------------

TEST(CampaignRecord, JsonRoundTripIsExact) {
  const CampaignRecord r = SampleRecord();
  const std::string json = r.ToJson(/*include_timings=*/true);
  const auto parsed = util::ParseJson(json);
  ASSERT_TRUE(parsed.has_value());
  const auto back = CampaignRecord::FromJson(*parsed);
  ASSERT_TRUE(back.has_value());
  // Re-serializing the parsed record must be byte-identical: canonical
  // %.17g doubles survive the round trip exactly.
  EXPECT_EQ(back->ToJson(true), json);
  EXPECT_EQ(back->name, r.name);
  EXPECT_EQ(back->broken_connections, 123u);
  EXPECT_DOUBLE_EQ(back->critical_path_ps, r.critical_path_ps);
  ASSERT_EQ(back->attacks.size(), 1u);
  EXPECT_DOUBLE_EQ(back->attacks[0].counters.at("candidates"), 17.0);
}

TEST(CampaignRecord, CanonicalJsonExcludesTimings) {
  const CampaignRecord r = SampleRecord();
  const std::string canonical = r.ToJson(/*include_timings=*/false);
  EXPECT_EQ(canonical.find("elapsed_s"), std::string::npos);
  EXPECT_EQ(canonical.find("\"times\""), std::string::npos);
  // Two runs of the same key that differ only in wall clocks agree.
  CampaignRecord slower = r;
  slower.elapsed_s = 99.0;
  slower.lock_s = 42.0;
  slower.attacks[0].elapsed_s = 7.0;
  EXPECT_EQ(slower.ToJson(false), canonical);
  EXPECT_NE(slower.ToJson(true), r.ToJson(true));
}

// --- Store ------------------------------------------------------------------

TEST_F(StoreTest, FlowInsertThenLookupRoundTrips) {
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  EXPECT_FALSE(store.LookupFlow(key).has_value());  // cold
  EXPECT_TRUE(store.InsertFlow(key, SampleFlowRecord()));
  const auto hit = store.LookupFlow(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->ToJson(true), SampleFlowRecord().ToJson(true));

  const StoreStats stats = store.Stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.corrupt, 0u);

  // A second store over the same directory sees the record (persistence).
  ResultStore reopened(dir_);
  EXPECT_TRUE(reopened.LookupFlow(key).has_value());
}

TEST_F(StoreTest, AttackInsertThenLookupRoundTrips) {
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  EXPECT_FALSE(store.LookupAttack(key, kSampleAttackHash).has_value());
  EXPECT_TRUE(store.InsertAttack(key, kSampleAttackHash,
                                 SampleAttackRecord()));
  const auto hit = store.LookupAttack(key, kSampleAttackHash);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->ToJson(true), SampleAttackRecord().ToJson(true));
  EXPECT_TRUE(hit->has_score);
  EXPECT_DOUBLE_EQ(hit->hd_percent, 49.5);
  EXPECT_EQ(hit->score_patterns, 4096u);
}

TEST_F(StoreTest, DistinctKeysDistinctFiles) {
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  // Two attack identities under one flow key are separate records...
  EXPECT_TRUE(store.InsertAttack(key, kSampleAttackHash,
                                 SampleAttackRecord()));
  EXPECT_FALSE(store.LookupAttack(key, kSampleAttackHash ^ 1).has_value());
  AttackRecord different = SampleAttackRecord();
  different.hd_percent = 1.0;
  EXPECT_TRUE(store.InsertAttack(key, kSampleAttackHash ^ 1, different));
  EXPECT_DOUBLE_EQ(store.LookupAttack(key, kSampleAttackHash)->hd_percent,
                   49.5);
  EXPECT_DOUBLE_EQ(store.LookupAttack(key, kSampleAttackHash ^ 1)->hd_percent,
                   1.0);
  // ...and a different flow key shares nothing.
  StoreKey other = key;
  other.flow_hash ^= 1;
  EXPECT_FALSE(store.LookupFlow(other).has_value());
  EXPECT_FALSE(store.LookupAttack(other, kSampleAttackHash).has_value());
}

TEST_F(StoreTest, CorruptFileReadsAsMiss) {
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  EXPECT_TRUE(store.InsertFlow(key, SampleFlowRecord()));
  {  // truncate the record mid-file, as a crashed non-atomic writer would
    std::ofstream f(dir_ + "/" + key.FlowFilename(), std::ios::binary);
    f << "{\"schema_version\":1,\"key\":{\"suite\":\"itc/b14\"";
  }
  EXPECT_FALSE(store.LookupFlow(key).has_value());
  EXPECT_EQ(store.Stats().corrupt, 1u);
  // The store recovers by overwriting.
  EXPECT_TRUE(store.InsertFlow(key, SampleFlowRecord()));
  EXPECT_TRUE(store.LookupFlow(key).has_value());
}

TEST_F(StoreTest, SchemaVersionMismatchReadsAsMiss) {
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  EXPECT_TRUE(store.InsertFlow(key, SampleFlowRecord()));
  const std::string path = dir_ + "/" + key.FlowFilename();
  std::ifstream in(path, std::ios::binary);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  const std::string needle =
      "\"schema_version\":" + std::to_string(kResultSchemaVersion);
  const size_t pos = text.find(needle);
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, needle.size(), "\"schema_version\":0");
  std::ofstream(path, std::ios::binary) << text;
  EXPECT_FALSE(store.LookupFlow(key).has_value());
  EXPECT_EQ(store.Stats().corrupt, 1u);
}

TEST_F(StoreTest, KeyEchoMismatchReadsAsCorrupt) {
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  EXPECT_TRUE(store.InsertFlow(key, SampleFlowRecord()));
  // File copied/renamed under a different key: must not be served.
  StoreKey other = key;
  other.flow_hash ^= 0xff;
  fs::copy_file(dir_ + "/" + key.FlowFilename(),
                dir_ + "/" + other.FlowFilename());
  EXPECT_FALSE(store.LookupFlow(other).has_value());
  EXPECT_EQ(store.Stats().corrupt, 1u);
}

TEST_F(StoreTest, KindConfusionReadsAsCorrupt) {
  // A flow record copied over an attack filename (or vice versa) must not
  // parse as the other kind — the envelope's kind marker catches it even
  // when the key echo would match.
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  EXPECT_TRUE(store.InsertFlow(key, SampleFlowRecord()));
  fs::copy_file(dir_ + "/" + key.FlowFilename(),
                dir_ + "/" + key.AttackFilename(kSampleAttackHash));
  EXPECT_FALSE(store.LookupAttack(key, kSampleAttackHash).has_value());
  EXPECT_EQ(store.Stats().corrupt, 1u);
}

TEST_F(StoreTest, InsertLeavesNoTempFiles) {
  ResultStore store(dir_);
  StoreKey key = SampleKey();
  for (int i = 0; i < 4; ++i) {
    key.flow_hash = static_cast<uint64_t>(i);
    EXPECT_TRUE(store.InsertFlow(key, SampleFlowRecord()));
    EXPECT_TRUE(store.InsertAttack(key, kSampleAttackHash,
                                   SampleAttackRecord()));
  }
  size_t files = 0;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".json") << entry.path();
    ++files;
  }
  EXPECT_EQ(files, 8u);
}

TEST_F(StoreTest, ConcurrentSameKeyInsertsAndLookupsAreSafe) {
  // Campaign workers race Lookup/Insert on the pool; same-key writers are
  // resolved by atomic rename, so readers must only ever see a miss or a
  // complete record — never a torn one.
  ResultStore store(dir_);
  const StoreKey key = SampleKey();
  const FlowRecord flow = SampleFlowRecord();
  const AttackRecord attack = SampleAttackRecord();
  exec::ParallelFor(64, 1, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      switch (i % 4) {
        case 0:
          EXPECT_TRUE(store.InsertFlow(key, flow));
          break;
        case 1:
          EXPECT_TRUE(store.InsertAttack(key, kSampleAttackHash, attack));
          break;
        case 2:
          if (const auto hit = store.LookupFlow(key)) {
            EXPECT_EQ(hit->ToJson(true), flow.ToJson(true));
          }
          break;
        default:
          if (const auto hit = store.LookupAttack(key, kSampleAttackHash)) {
            EXPECT_EQ(hit->ToJson(true), attack.ToJson(true));
          }
      }
    }
  });
  EXPECT_EQ(store.Stats().corrupt, 0u);
  EXPECT_EQ(store.Stats().insert_errors, 0u);
  ASSERT_TRUE(store.LookupFlow(key).has_value());
  ASSERT_TRUE(store.LookupAttack(key, kSampleAttackHash).has_value());
}

TEST(StoreKeyTest, FilenamesSanitizeAndDisambiguate) {
  StoreKey key = SampleKey();
  for (const std::string& name :
       {key.FlowFilename(), key.AttackFilename(kSampleAttackHash),
        key.ArtifactFilename()}) {
    EXPECT_EQ(name.find('/'), std::string::npos) << name;
  }
  // The three file kinds under one key never collide.
  EXPECT_NE(key.FlowFilename(), key.AttackFilename(kSampleAttackHash));
  EXPECT_NE(key.FlowFilename(), key.ArtifactFilename());
  StoreKey other = key;
  other.scale = CanonicalDouble(0.5);
  EXPECT_NE(other.FlowFilename(), key.FlowFilename());
  EXPECT_NE(other.AttackFilename(kSampleAttackHash),
            key.AttackFilename(kSampleAttackHash));
}

// --- Composition ------------------------------------------------------------

TEST(Compose, AssemblesCampaignRecordFromPieces) {
  const FlowRecord flow = SampleFlowRecord();
  AttackRecord scoreless = SampleAttackRecord();
  scoreless.engine = "sat";
  scoreless.config = "sat";
  scoreless.has_score = false;
  const AttackRecord scored = SampleAttackRecord();
  const CampaignRecord r = ComposeCampaignRecord(flow, {scoreless, scored});
  EXPECT_EQ(r.name, "b14");
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.broken_connections, 123u);
  EXPECT_DOUBLE_EQ(r.die_area_um2, 1234.5);
  // Campaign score = the first attack carrying one, skipping scoreless
  // engines (key-only engines like sat produce no assignment).
  EXPECT_DOUBLE_EQ(r.hd_percent, 49.5);
  EXPECT_EQ(r.score_patterns, 4096u);
  ASSERT_EQ(r.attacks.size(), 2u);
  EXPECT_EQ(r.attacks[0].engine, "sat");
  // Timings (including elapsed_s) come from the flow's producing run.
  EXPECT_DOUBLE_EQ(r.lock_s, 2.25);
  EXPECT_DOUBLE_EQ(r.elapsed_s, 9.75);
}

TEST(Compose, RoundTripThroughStoreIsByteIdentical) {
  // The partial-hit contract in one invariant: composing from records that
  // went through ToJson -> FromJson yields the same canonical bytes as
  // composing from the originals (CanonicalDouble is round-trip exact).
  const FlowRecord flow = SampleFlowRecord();
  const std::vector<AttackRecord> attacks = {SampleAttackRecord()};
  const CampaignRecord direct = ComposeCampaignRecord(flow, attacks);

  const auto flow_doc = util::ParseJson(flow.ToJson(true));
  ASSERT_TRUE(flow_doc.has_value());
  const auto flow_back = FlowRecord::FromJson(*flow_doc);
  ASSERT_TRUE(flow_back.has_value());
  const auto attack_doc = util::ParseJson(attacks[0].ToJson(true));
  ASSERT_TRUE(attack_doc.has_value());
  const auto attack_back = AttackRecord::FromJson(*attack_doc);
  ASSERT_TRUE(attack_back.has_value());

  const CampaignRecord assembled =
      ComposeCampaignRecord(*flow_back, {*attack_back});
  EXPECT_EQ(assembled.ToJson(false), direct.ToJson(false));
  EXPECT_EQ(assembled.ToJson(true), direct.ToJson(true));
}

// --- Golden store-key hashes ------------------------------------------------
//
// These values ARE the on-disk cache partitioning: a refactor that changes
// any canonical string or hash silently orphans every stored record (and,
// worse, could collide shard tables from different campaigns). Update the
// constants ONLY for a deliberate, schema-version-bumping change.

TEST(GoldenHashes, AttackConfigHashIsPinned) {
  EXPECT_EQ(attack::AttackConfig::Parse("proximity").Hash(),
            14686014519266357090ULL);
  EXPECT_EQ(attack::AttackConfig::Parse("sat-portfolio:configs=8").Hash(),
            9371812277043906062ULL);
  // Params are canonically ordered: spec order must not matter.
  EXPECT_EQ(attack::AttackConfig::Parse("sat:b=1,a=2").Hash(),
            attack::AttackConfig::Parse("sat:a=2,b=1").Hash());
  EXPECT_EQ(attack::AttackConfig::Parse("sat:b=1,a=2").Hash(),
            15138703352570698769ULL);
}

TEST(GoldenHashes, FlowOptionsHashIsPinned) {
  const core::FlowOptions defaults;
  EXPECT_EQ(core::FlowOptionsCanonical(defaults),
            "v1;key_bits=128;split_layer=4;lift_layer=0;"
            "utilization=0.69999999999999996;placer_moves_per_cell=60;seed=1;"
            "power_patterns=2048;randomize_tie_placement=1;lift_key_nets=1;"
            "package_mode=0;lock.max_cut_leaves=12;lock.max_minterms=512;"
            "lock.max_cubes=6;lock.partitions=8;lock.min_bias=0.75;"
            "lock.bias_patterns=4096;lock.check_patterns=2048;"
            "lock.verify_lec=1;lock.require_area_gain=1");
  EXPECT_EQ(core::FlowOptionsHash(defaults), 3339888385804500872ULL);

  core::FlowOptions m6 = defaults;
  m6.split_layer = 6;
  EXPECT_EQ(core::FlowOptionsHash(m6), 12318144755518929478ULL);

  // Synced lock fields must not shift the key (RunSecureFlow overrides
  // them with the top-level values).
  core::FlowOptions synced = defaults;
  synced.lock.key_bits = 7;
  synced.lock.seed = 99;
  EXPECT_EQ(core::FlowOptionsHash(synced), core::FlowOptionsHash(defaults));
}

TEST(GoldenHashes, AttackKeyHashIsPinned) {
  // The per-attack record address introduced by the two-level split (v4).
  EXPECT_EQ(AttackKeyHash("proximity", 4096), 1514545893005242316ULL);
  // Both components participate: the same config scored under a different
  // pattern budget is a different record.
  EXPECT_NE(AttackKeyHash("proximity", 4096), AttackKeyHash("proximity", 2048));
  EXPECT_NE(AttackKeyHash("proximity", 4096), AttackKeyHash("ml", 4096));
}

TEST(GoldenHashes, PortfolioHashIsPinned) {
  EXPECT_EQ(PortfolioHash({"proximity"}, 4096, true),
            16128696088342593761ULL);
  // Every component participates.
  EXPECT_NE(PortfolioHash({"proximity"}, 4096, true),
            PortfolioHash({"proximity"}, 8192, true));
  EXPECT_NE(PortfolioHash({"proximity"}, 4096, true),
            PortfolioHash({"proximity"}, 4096, false));
  EXPECT_NE(PortfolioHash({"proximity"}, 4096, true),
            PortfolioHash({"proximity", "ml"}, 4096, true));
}

}  // namespace
}  // namespace splitlock::store
