#include <gtest/gtest.h>

#include "circuits/c17.hpp"
#include "circuits/random_circuit.hpp"
#include "lec/lec.hpp"
#include "netlist/netlist.hpp"
#include "opt/optimizer.hpp"
#include "sat/tseitin.hpp"
#include "sim/simulator.hpp"

namespace splitlock {
namespace {

// Exhaustively checks that the encoder's literal for a 2-input op matches
// EvalGateWord on all four input combinations.
void CheckOpAgainstTruth(GateOp op, size_t arity) {
  sat::Solver solver;
  sat::StructuralEncoder enc(solver);
  std::vector<sat::Lit> ins;
  for (size_t i = 0; i < arity; ++i) ins.push_back(enc.FreshLit());
  const sat::Lit out = enc.EncodeOp(op, ins);

  for (uint32_t m = 0; m < (1u << arity); ++m) {
    std::vector<sat::Lit> assumptions;
    std::vector<uint64_t> words(arity);
    for (size_t i = 0; i < arity; ++i) {
      const bool bit = (m >> i) & 1;
      words[i] = bit ? ~0ULL : 0;
      assumptions.push_back(bit ? ins[i] : sat::Negate(ins[i]));
    }
    const bool expect = EvalGateWord(op, words) & 1;
    assumptions.push_back(expect ? sat::Negate(out) : out);
    // Asserting the wrong output value must be UNSAT.
    EXPECT_EQ(solver.Solve(assumptions), sat::SolveResult::kUnsat)
        << GateOpName(op) << " m=" << m;
  }
}

TEST(Tseitin, AllOpsMatchTruthTables) {
  CheckOpAgainstTruth(GateOp::kAnd, 2);
  CheckOpAgainstTruth(GateOp::kAnd, 3);
  CheckOpAgainstTruth(GateOp::kNand, 2);
  CheckOpAgainstTruth(GateOp::kNand, 4);
  CheckOpAgainstTruth(GateOp::kOr, 2);
  CheckOpAgainstTruth(GateOp::kOr, 3);
  CheckOpAgainstTruth(GateOp::kNor, 2);
  CheckOpAgainstTruth(GateOp::kXor, 2);
  CheckOpAgainstTruth(GateOp::kXnor, 2);
  CheckOpAgainstTruth(GateOp::kMux, 3);
  CheckOpAgainstTruth(GateOp::kBuf, 1);
  CheckOpAgainstTruth(GateOp::kInv, 1);
}

TEST(Tseitin, StructuralHashingMergesIdenticalCones) {
  sat::Solver solver;
  sat::StructuralEncoder enc(solver);
  const sat::Lit a = enc.FreshLit();
  const sat::Lit b = enc.FreshLit();
  const sat::Lit x1 =
      enc.EncodeOp(GateOp::kAnd, std::array<sat::Lit, 2>{a, b});
  const sat::Lit x2 =
      enc.EncodeOp(GateOp::kAnd, std::array<sat::Lit, 2>{b, a});
  EXPECT_EQ(x1, x2);  // commutative canonicalization
  // NAND must be the complement literal of AND.
  const sat::Lit x3 =
      enc.EncodeOp(GateOp::kNand, std::array<sat::Lit, 2>{a, b});
  EXPECT_EQ(x3, sat::Negate(x1));
  // OR(a,b) == NOT(AND(!a,!b)) shares structure through negation.
  const sat::Lit x4 = enc.EncodeOp(GateOp::kOr, std::array<sat::Lit, 2>{a, b});
  const sat::Lit x5 = enc.EncodeOp(
      GateOp::kNor, std::array<sat::Lit, 2>{a, b});
  EXPECT_EQ(x5, sat::Negate(x4));
}

TEST(Tseitin, ConstantFolding) {
  sat::Solver solver;
  sat::StructuralEncoder enc(solver);
  const sat::Lit a = enc.FreshLit();
  EXPECT_EQ(enc.EncodeOp(GateOp::kAnd,
                         std::array<sat::Lit, 2>{a, enc.FalseLit()}),
            enc.FalseLit());
  EXPECT_EQ(
      enc.EncodeOp(GateOp::kAnd, std::array<sat::Lit, 2>{a, enc.TrueLit()}),
      a);
  EXPECT_EQ(
      enc.EncodeOp(GateOp::kXor, std::array<sat::Lit, 2>{a, a}),
      enc.FalseLit());
  EXPECT_EQ(enc.EncodeOp(GateOp::kXor,
                         std::array<sat::Lit, 2>{a, sat::Negate(a)}),
            enc.TrueLit());
}

TEST(Lec, IdenticalNetlistsEquivalent) {
  const Netlist nl = circuits::MakeC17();
  const LecResult r = CheckEquivalence(nl, nl);
  EXPECT_TRUE(r.proven);
  EXPECT_TRUE(r.equivalent);
}

TEST(Lec, DetectsInvertedOutput) {
  const Netlist nl = circuits::MakeC17();
  Netlist broken = nl;
  const GateId po = broken.outputs()[0];
  const NetId inv = broken.AddGate(GateOp::kInv, {broken.gate(po).fanins[0]});
  broken.ReplaceFanin(po, 0, inv);
  const LecResult r = CheckEquivalence(nl, broken);
  ASSERT_TRUE(r.proven);
  EXPECT_FALSE(r.equivalent);
  EXPECT_EQ(r.differing_output, 0u);
  ASSERT_EQ(r.counterexample.size(), nl.inputs().size());

  // The counterexample must actually distinguish the two designs.
  Simulator sim_a(nl);
  Simulator sim_b(broken);
  for (size_t i = 0; i < nl.inputs().size(); ++i) {
    const uint64_t w = r.counterexample[i] ? ~0ULL : 0;
    sim_a.SetSourceWord(nl.inputs()[i], w);
    sim_b.SetSourceWord(broken.inputs()[i], w);
  }
  sim_a.Run();
  sim_b.Run();
  bool differs = false;
  for (size_t o = 0; o < nl.outputs().size(); ++o) {
    if ((sim_a.OutputWord(o) ^ sim_b.OutputWord(o)) & 1) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Lec, NandVsAndInvEquivalent) {
  Netlist lhs("lhs");
  {
    const NetId a = lhs.AddInput("a");
    const NetId b = lhs.AddInput("b");
    lhs.AddOutput(lhs.AddGate(GateOp::kNand, {a, b}), "y");
  }
  Netlist rhs("rhs");
  {
    const NetId a = rhs.AddInput("a");
    const NetId b = rhs.AddInput("b");
    const NetId x = rhs.AddGate(GateOp::kAnd, {a, b});
    rhs.AddOutput(rhs.AddGate(GateOp::kInv, {x}), "y");
  }
  const LecResult r = CheckEquivalence(lhs, rhs);
  EXPECT_TRUE(r.proven);
  EXPECT_TRUE(r.equivalent);
}

TEST(Lec, KeyBindingDistinguishes) {
  Netlist plain("p");
  const NetId a = plain.AddInput("a");
  plain.AddOutput(a, "y");

  Netlist keyed("k");
  const NetId ka = keyed.AddInput("a");
  const NetId k0 = keyed.AddGate(GateOp::kKeyIn, {}, "key_0");
  keyed.AddOutput(keyed.AddGate(GateOp::kXor, {ka, k0}), "y");

  const std::vector<uint8_t> good = {0};
  const std::vector<uint8_t> bad = {1};
  EXPECT_TRUE(CheckEquivalence(plain, keyed, {}, good).equivalent);
  const LecResult r = CheckEquivalence(plain, keyed, {}, bad);
  ASSERT_TRUE(r.proven);
  EXPECT_FALSE(r.equivalent);
}

TEST(Lec, SweepingHandlesStructurallyForeignEquivalents) {
  // f = a&b&c&d implemented as one AND4 vs as redundant OR of three
  // distinct trees — the shape the locking flow removes. Plain CDCL on the
  // full miter is expensive; SAT sweeping must keep this trivial.
  Netlist lhs("lhs");
  {
    const NetId a = lhs.AddInput("a");
    const NetId b = lhs.AddInput("b");
    const NetId c = lhs.AddInput("c");
    const NetId d = lhs.AddInput("d");
    lhs.AddOutput(lhs.AddGate(GateOp::kAnd, {a, b, c, d}), "y");
  }
  Netlist rhs("rhs");
  {
    const NetId a = rhs.AddInput("a");
    const NetId b = rhs.AddInput("b");
    const NetId c = rhs.AddInput("c");
    const NetId d = rhs.AddInput("d");
    const NetId t1 = rhs.AddGate(
        GateOp::kAnd, {rhs.AddGate(GateOp::kAnd, {a, b}),
                       rhs.AddGate(GateOp::kAnd, {c, d})});
    const NetId t2 = rhs.AddGate(
        GateOp::kAnd, {rhs.AddGate(GateOp::kAnd, {a, c}),
                       rhs.AddGate(GateOp::kAnd, {b, d})});
    const NetId nand_part = rhs.AddGate(GateOp::kNand, {a, b, c, d});
    const NetId t3 = rhs.AddGate(GateOp::kInv, {nand_part});
    rhs.AddOutput(rhs.AddGate(GateOp::kOr, {t1, t2, t3}), "y");
  }
  const LecResult r = CheckEquivalence(lhs, rhs);
  EXPECT_TRUE(r.proven);
  EXPECT_TRUE(r.equivalent);
}

TEST(Lec, DeepDownstreamAfterLocalChangeStaysCheap) {
  // A locked-style miter: one internal cone re-implemented differently,
  // with a long chain of logic downstream. Sweeping substitutes at the
  // cone boundary, so the downstream re-folds and the proof stays small.
  auto build = [](bool redundant) {
    Netlist nl(redundant ? "red" : "plain");
    const NetId a = nl.AddInput("a");
    const NetId b = nl.AddInput("b");
    const NetId c = nl.AddInput("c");
    NetId core;
    if (!redundant) {
      core = nl.AddGate(GateOp::kAnd, {a, b, c});
    } else {
      const NetId t1 = nl.AddGate(GateOp::kAnd,
                                  {nl.AddGate(GateOp::kAnd, {a, b}), c});
      const NetId t2 = nl.AddGate(GateOp::kAnd,
                                  {nl.AddGate(GateOp::kAnd, {b, c}), a});
      core = nl.AddGate(GateOp::kOr, {t1, t2});
    }
    // Deep downstream chain mixing the core with the inputs.
    NetId cur = core;
    for (int i = 0; i < 64; ++i) {
      cur = nl.AddGate(GateOp::kXor, {cur, i % 2 == 0 ? a : b});
      cur = nl.AddGate(GateOp::kNand, {cur, c});
    }
    nl.AddOutput(cur, "y");
    return nl;
  };
  const Netlist plain = build(false);
  const Netlist redundant = build(true);
  const LecResult r = CheckEquivalence(plain, redundant);
  EXPECT_TRUE(r.proven);
  EXPECT_TRUE(r.equivalent);
  // Sweeping should keep the conflict count tiny.
  EXPECT_LT(r.conflicts, 2000u);
}

TEST(Lec, OptimizedNetlistStaysEquivalent) {
  circuits::CircuitSpec spec;
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  spec.num_gates = 200;
  spec.seed = 31;
  const Netlist original = circuits::GenerateCircuit(spec);
  Netlist optimized = original;
  OptimizeArea(optimized);
  const LecResult r = CheckEquivalence(original, optimized);
  EXPECT_TRUE(r.proven);
  EXPECT_TRUE(r.equivalent);
}

}  // namespace
}  // namespace splitlock
