#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/env.hpp"
#include "util/geom.hpp"
#include "util/rng.hpp"

namespace splitlock {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextWord(), b.NextWord());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextWord() == b.NextWord()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextUintRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint(17), 17u);
  }
}

TEST(Rng, NextIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(Rng, WeightedDrawRespectsZeroWeights) {
  Rng rng(13);
  const std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(rng.NextWeighted(weights), 1u);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(23);
  Rng child = a.Fork();
  // The fork must not mirror the parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextWord() == child.NextWord()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Geom, ManhattanDistance) {
  EXPECT_DOUBLE_EQ(ManhattanDistance({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance({-1, -1}, {1, 1}), 4.0);
  EXPECT_DOUBLE_EQ(ManhattanDistance({2, 2}, {2, 2}), 0.0);
}

TEST(Geom, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
}

TEST(Geom, RectBasics) {
  const Rect r{{1, 2}, {4, 6}};
  EXPECT_DOUBLE_EQ(r.Width(), 3.0);
  EXPECT_DOUBLE_EQ(r.Height(), 4.0);
  EXPECT_DOUBLE_EQ(r.Area(), 12.0);
  EXPECT_DOUBLE_EQ(r.HalfPerimeter(), 7.0);
  EXPECT_TRUE(r.Contains({2, 3}));
  EXPECT_TRUE(r.Contains({1, 2}));  // boundary inclusive
  EXPECT_FALSE(r.Contains({0, 3}));
}

TEST(Geom, RectExpand) {
  Rect r = Rect::Around({5, 5});
  EXPECT_DOUBLE_EQ(r.Area(), 0.0);
  r.Expand({7, 4});
  EXPECT_DOUBLE_EQ(r.lo.x, 5.0);
  EXPECT_DOUBLE_EQ(r.lo.y, 4.0);
  EXPECT_DOUBLE_EQ(r.hi.x, 7.0);
  EXPECT_DOUBLE_EQ(r.hi.y, 5.0);
}

TEST(Env, DefaultsAreSane) {
  // No env overrides in the test environment: check documented defaults.
  EXPECT_GT(ReproScale(), 0.0);
  EXPECT_LE(ReproScale(), 1.0);
  EXPECT_GE(ReproPatterns(), 64u);
  EXPECT_GE(ReproGuesses(), 64u);
}

}  // namespace
}  // namespace splitlock
