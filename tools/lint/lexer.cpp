#include "lint/lexer.hpp"

#include <array>
#include <cctype>

namespace splitlock::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character operators, longest first so maximal munch is a plain
// prefix scan.
constexpr std::array<std::string_view, 24> kOperators = {
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "^=",  "|="};

}  // namespace

LexResult Lex(std::string_view src) {
  LexResult out;
  size_t i = 0;
  int line = 1;
  bool last_was_line_comment = false;
  const size_t n = src.size();

  auto peek = [&](size_t k) -> char { return i + k < n ? src[i + k] : '\0'; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment. Consecutive-line `//` runs merge into one logical
    // comment so a pragma whose reason wraps onto the next line keeps its
    // full reason and its full suppression window.
    if (c == '/' && peek(1) == '/') {
      size_t j = i + 2;
      while (j < n && src[j] != '\n') ++j;
      std::string text(src.substr(i + 2, j - i - 2));
      if (!out.comments.empty() && last_was_line_comment &&
          out.comments.back().end_line == line - 1) {
        if (!text.empty() && text[0] != ' ') out.comments.back().text += " ";
        out.comments.back().text += text;
        out.comments.back().end_line = line;
      } else {
        out.comments.push_back({line, line, std::move(text)});
      }
      last_was_line_comment = true;
      i = j;
      continue;
    }
    // Block comment.
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      size_t j = i + 2;
      while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
        if (src[j] == '\n') ++line;
        ++j;
      }
      const size_t end = j + 1 < n ? j : n;
      out.comments.push_back(
          {start_line, line, std::string(src.substr(i + 2, end - i - 2))});
      last_was_line_comment = false;
      i = j + 1 < n ? j + 2 : n;
      continue;
    }

    // Raw string literal: R"delim( ... )delim". Must be checked before the
    // identifier path eats the R.
    if (c == 'R' && peek(1) == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && src[j] != '(' && src[j] != '\n' &&
             j - (i + 2) < 16) {
        delim.push_back(src[j]);
        ++j;
      }
      if (j < n && src[j] == '(') {
        const std::string close = ")" + delim + "\"";
        const size_t body = j + 1;
        const size_t endpos = src.find(close, body);
        const size_t stop = endpos == std::string_view::npos ? n : endpos;
        const int start_line = line;
        for (size_t k = i; k < stop; ++k) {
          if (src[k] == '\n') ++line;
        }
        out.tokens.push_back({TokKind::kString,
                              std::string(src.substr(body, stop - body)),
                              start_line});
        i = endpos == std::string_view::npos ? n : endpos + close.size();
        continue;
      }
      // Not actually a raw string (e.g. `R"` at EOF); fall through as ident.
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      size_t j = i + 1;
      std::string text;
      while (j < n && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < n) {
          text.push_back(src[j]);
          text.push_back(src[j + 1]);
          if (src[j + 1] == '\n') ++line;
          j += 2;
          continue;
        }
        if (src[j] == '\n') ++line;  // unterminated; keep line count honest
        text.push_back(src[j]);
        ++j;
      }
      out.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                            std::move(text), start_line});
      i = j < n ? j + 1 : n;
      continue;
    }

    // Identifier / keyword.
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(src[j])) ++j;
      out.tokens.push_back(
          {TokKind::kIdent, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }

    // Number (handles 0x1.8p3, 1'000'000, 1e-9f — we only need to not split
    // them into spurious idents/puncts).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      size_t j = i + 1;
      while (j < n) {
        const char d = src[j];
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i &&
            (src[j - 1] == 'e' || src[j - 1] == 'E' || src[j - 1] == 'p' ||
             src[j - 1] == 'P')) {
          ++j;
          continue;
        }
        break;
      }
      out.tokens.push_back(
          {TokKind::kNumber, std::string(src.substr(i, j - i)), line});
      i = j;
      continue;
    }

    // Punctuation: maximal munch over the multi-char operator table.
    std::string_view rest = src.substr(i);
    std::string_view matched;
    for (std::string_view op : kOperators) {
      if (rest.substr(0, op.size()) == op) {
        matched = op;
        break;
      }
    }
    if (!matched.empty()) {
      out.tokens.push_back({TokKind::kPunct, std::string(matched), line});
      i += matched.size();
    } else {
      out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }
  return out;
}

}  // namespace splitlock::lint
