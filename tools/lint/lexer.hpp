// Minimal C++ lexer for splitlock_lint.
//
// The linter's rules are lexical: they match identifier/punctuation shapes
// (a `rand` call, a range-for over a name declared as an unordered
// container, a `[&]` capture inside a ParallelFor argument). That needs a
// tokenizer that is *exactly right* about what is code and what is not —
// comments, string/char literals, raw strings — and nothing more. No
// preprocessing, no name lookup, no libclang: the scanner must run on any
// machine the repo builds on.
//
// Comments are not discarded: they carry the lint pragmas
// (`lint:allow(...)`) and the schema annotations (`lint:result-schema`),
// so they are returned alongside the token stream with line numbers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace splitlock::lint {

enum class TokKind {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (incl. hex/float/suffixes)
  kString,  // "..." and R"(...)" contents (text excludes quotes)
  kChar,    // '...'
  kPunct,   // operators/punctuation, maximal-munch over the C++ set
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
};

struct Comment {
  int line = 0;       // 1-based line the comment starts on
  int end_line = 0;   // last line (block comments span several)
  std::string text;   // contents without the // or /* */ markers
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

// Tokenizes C++ source. Never throws: malformed input (unterminated
// literal/comment) terminates the current token at end of input.
LexResult Lex(std::string_view src);

}  // namespace splitlock::lint
