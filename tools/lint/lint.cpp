// Lint driver: file discovery, pragma parsing/suppression, report output.
// The rules themselves live in rules.cpp.
#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "lint/lexer.hpp"
#include "lint/rules_internal.hpp"

namespace splitlock::lint {
namespace {

namespace fs = std::filesystem;

struct Pragma {
  std::string rule;    // rule it suppresses
  std::string reason;
  int line = 0;        // first line of the carrying comment
  int end_line = 0;    // suppression covers [line, end_line + 1]
  bool whole_file = false;
};

struct PragmaScan {
  std::vector<Pragma> pragmas;
  std::vector<Violation> bad;  // bad-pragma violations
};

bool KnownRule(const std::string& name) {
  for (const std::string& r : RuleNames()) {
    if (r == name) return true;
  }
  return false;
}

std::string Trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

// Parses every lint directive in the file's comments. Directives are
// "lint:" immediately followed by a keyword; stray "lint:" prefixes that
// do not parse become bad-pragma violations so typos fail loudly instead
// of silently not suppressing.
PragmaScan ScanPragmas(const std::string& path,
                       const std::vector<Comment>& comments) {
  PragmaScan out;
  for (const Comment& c : comments) {
    size_t pos = 0;
    while ((pos = c.text.find("lint:", pos)) != std::string::npos) {
      // A directive must start a word ("lint:" at the comment start or
      // after whitespace) and be followed by a keyword character. That
      // keeps prose mentions — `splitlock::lint::internal`, quoted or
      // backticked "lint:..." strings — from parsing as pragmas.
      const bool word_start =
          pos == 0 ||
          std::isspace(static_cast<unsigned char>(c.text[pos - 1]));
      const std::string_view rest =
          std::string_view(c.text).substr(pos + 5);
      pos += 5;
      if (!word_start || rest.empty() ||
          !std::islower(static_cast<unsigned char>(rest[0]))) {
        continue;
      }

      auto bad = [&](const std::string& why) {
        out.bad.push_back({"bad-pragma", path, c.line,
                           "malformed lint pragma: " + why, false, ""});
      };

      auto parse_allow = [&](std::string_view keyword, bool whole_file) {
        const std::string_view args = rest.substr(keyword.size());
        if (args.empty() || args[0] != '(') {
          bad(std::string(keyword) + " requires a (rule-name)");
          return;
        }
        const size_t close = args.find(')');
        if (close == std::string_view::npos) {
          bad(std::string(keyword) + " missing closing parenthesis");
          return;
        }
        const std::string rule = Trim(args.substr(1, close - 1));
        const std::string reason = Trim(args.substr(close + 1));
        if (!KnownRule(rule)) {
          bad("unknown rule '" + rule + "'");
          return;
        }
        if (rule == "bad-pragma") {
          bad("bad-pragma is not suppressible");
          return;
        }
        if (reason.empty()) {
          bad("suppression of '" + rule +
              "' carries no reason — say why the invariant holds");
          return;
        }
        out.pragmas.push_back(
            {rule, reason, c.line, c.end_line, whole_file});
      };

      if (rest.rfind("allow-file", 0) == 0) {
        parse_allow("allow-file", /*whole_file=*/true);
      } else if (rest.rfind("allow", 0) == 0) {
        parse_allow("allow", /*whole_file=*/false);
      } else if (rest.rfind("ordered-reduction", 0) == 0) {
        const std::string reason =
            Trim(rest.substr(std::string_view("ordered-reduction").size()));
        if (reason.empty()) {
          bad("ordered-reduction carries no reason — say why iteration "
              "order cannot leak into results");
        } else {
          out.pragmas.push_back(
              {"unordered-iter", reason, c.line, c.end_line, false});
        }
      } else if (rest.rfind("result-schema", 0) == 0) {
        // Consumed by the schema-version rule; validate the shape here.
        const std::string_view args =
            rest.substr(std::string_view("result-schema").size());
        bool ok = args.size() >= 4 && args[0] == '(' && args[1] == 'v';
        if (ok) {
          size_t k = 2;
          while (k < args.size() && std::isdigit(static_cast<unsigned char>(
                                        args[k])))
            ++k;
          ok = k > 2 && k < args.size() && args[k] == ')';
        }
        if (!ok) bad("result-schema requires (vN) with a numeric N");
      } else {
        bad("unknown directive 'lint:" +
            Trim(rest.substr(0, rest.find_first_of(" \t("))) + "'");
      }
    }
  }
  return out;
}

void ApplySuppressions(const PragmaScan& scan,
                       std::vector<Violation>* violations) {
  for (Violation& v : *violations) {
    for (const Pragma& p : scan.pragmas) {
      if (p.rule != v.rule) continue;
      if (!p.whole_file && (v.line < p.line || v.line > p.end_line + 1))
        continue;
      v.suppressed = true;
      v.reason = p.reason;
      break;
    }
  }
}

void SortAndDedup(std::vector<Violation>* violations) {
  auto key = [](const Violation& v) {
    return std::tie(v.file, v.line, v.rule, v.message);
  };
  std::sort(violations->begin(), violations->end(),
            [&](const Violation& a, const Violation& b) {
              return key(a) < key(b);
            });
  violations->erase(
      std::unique(violations->begin(), violations->end(),
                  [&](const Violation& a, const Violation& b) {
                    return key(a) == key(b);
                  }),
      violations->end());
}

bool RuleEnabled(const LintOptions& opts, std::string_view rule) {
  if (opts.rules.empty()) return true;
  return std::find(opts.rules.begin(), opts.rules.end(), rule) !=
         opts.rules.end();
}

// One Register*("literal") site with its suppression state resolved from
// the owning file's pragmas. Collected per file, judged across files:
// duplicate names are only visible once every file has been scanned.
struct ObsRegSite {
  std::string file;
  int line = 0;
  std::string name;
  bool suppressed = false;
  std::string reason;
};

void LintOne(const std::string& path, std::string_view content,
             const LintOptions& opts, LintResult* result,
             std::vector<ObsRegSite>* obs_sites) {
  const LexResult lex = Lex(content);
  const PragmaScan scan = ScanPragmas(path, lex.comments);

  std::vector<Violation> file_violations;
  internal::RuleContext ctx{path, lex, opts.expected_schema_version};
  internal::RunRules(ctx, opts.rules, &file_violations);
  ApplySuppressions(scan, &file_violations);

  if (obs_sites != nullptr && RuleEnabled(opts, "obs-metric-once")) {
    std::vector<internal::ObsRegistration> regs;
    internal::CollectObsRegistrations(lex, &regs);
    for (const internal::ObsRegistration& reg : regs) {
      ObsRegSite site{path, reg.line, reg.name, false, ""};
      for (const Pragma& p : scan.pragmas) {
        if (p.rule != "obs-metric-once") continue;
        if (!p.whole_file &&
            (reg.line < p.line || reg.line > p.end_line + 1)) {
          continue;
        }
        site.suppressed = true;
        site.reason = p.reason;
        break;
      }
      obs_sites->push_back(std::move(site));
    }
  }

  const bool bad_pragma_enabled =
      opts.rules.empty() ||
      std::find(opts.rules.begin(), opts.rules.end(), "bad-pragma") !=
          opts.rules.end();
  if (bad_pragma_enabled) {
    file_violations.insert(file_violations.end(), scan.bad.begin(),
                           scan.bad.end());
  }
  SortAndDedup(&file_violations);
  result->violations.insert(result->violations.end(),
                            file_violations.begin(), file_violations.end());
  result->files_scanned += 1;
}

// Cross-file half of obs-metric-once: every metric-name literal may have
// at most one Register* site in the tree (the process-wide registry throws
// on the second registration at runtime). Each site beyond the first —
// in (file, line) order, so reports are stable — becomes a violation
// pointing back at the canonical first site.
void FinalizeObsMetricOnce(std::vector<ObsRegSite> sites,
                           LintResult* result) {
  std::sort(sites.begin(), sites.end(),
            [](const ObsRegSite& a, const ObsRegSite& b) {
              return std::tie(a.name, a.file, a.line) <
                     std::tie(b.name, b.file, b.line);
            });
  for (size_t i = 0; i < sites.size();) {
    size_t j = i + 1;
    while (j < sites.size() && sites[j].name == sites[i].name) ++j;
    for (size_t k = i + 1; k < j; ++k) {
      const ObsRegSite& s = sites[k];
      result->violations.push_back(
          {"obs-metric-once", s.file, s.line,
           "obs metric '" + s.name + "' also registered at " +
               sites[i].file + ":" + std::to_string(sites[i].line) +
               " — the process-wide registry throws on the second "
               "registration; share one registration helper instead",
           s.suppressed, s.reason});
    }
    i = j;
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::vector<std::string> RuleNames() {
  return {"raw-random",     "wall-clock",     "unordered-iter",
          "pointer-sort",   "shared-capture", "schema-version",
          "obs-metric-once", "bad-pragma"};
}

std::optional<int> ParseSchemaVersion(std::string_view header_text) {
  const LexResult lex = Lex(header_text);
  const auto& t = lex.tokens;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind == TokKind::kIdent &&
        t[i].text == "kResultSchemaVersion" &&
        t[i + 1].kind == TokKind::kPunct && t[i + 1].text == "=" &&
        t[i + 2].kind == TokKind::kNumber) {
      return std::stoi(t[i + 2].text);
    }
  }
  return std::nullopt;
}

LintResult LintSource(const std::string& path, std::string_view content,
                      const LintOptions& opts) {
  LintResult result;
  std::vector<ObsRegSite> obs_sites;
  LintOne(path, content, opts, &result, &obs_sites);
  FinalizeObsMetricOnce(std::move(obs_sites), &result);
  SortAndDedup(&result.violations);
  return result;
}

LintResult LintTree(const std::string& root, const LintOptions& opts) {
  LintResult result;
  LintOptions effective = opts;

  if (effective.expected_schema_version < 0) {
    const fs::path store_hpp =
        fs::path(root) / "src" / "store" / "result_store.hpp";
    std::ifstream in(store_hpp);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      if (auto v = ParseSchemaVersion(ss.str())) {
        effective.expected_schema_version = *v;
      }
    }
  }

  std::vector<fs::path> files;
  for (const char* dir : {"src", "tools", "bench", "tests"}) {
    const fs::path base = fs::path(root) / dir;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    for (auto it = fs::recursive_directory_iterator(base, ec);
         !ec && it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory()) {
        const std::string name = it->path().filename().string();
        if (name == "build" || (!name.empty() && name[0] == '.')) {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc") {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<ObsRegSite> obs_sites;
  for (const fs::path& f : files) {
    std::ifstream in(f, std::ios::binary);
    if (!in) continue;
    std::stringstream ss;
    ss << in.rdbuf();
    std::error_code ec;
    fs::path rel = fs::relative(f, root, ec);
    const std::string label =
        ec ? f.generic_string() : rel.generic_string();
    LintOne(label, ss.str(), effective, &result, &obs_sites);
  }
  FinalizeObsMetricOnce(std::move(obs_sites), &result);
  SortAndDedup(&result.violations);
  return result;
}

std::string ToJson(const LintResult& result) {
  std::string out = "{\"tool\":\"splitlock_lint\",\"files_scanned\":" +
                    std::to_string(result.files_scanned) +
                    ",\"unsuppressed\":" +
                    std::to_string(result.UnsuppressedCount()) +
                    ",\"suppressed\":" +
                    std::to_string(result.violations.size() -
                                   result.UnsuppressedCount()) +
                    ",\"violations\":[";
  bool first = true;
  for (const Violation& v : result.violations) {
    if (!first) out += ",";
    first = false;
    out += "{\"rule\":\"" + JsonEscape(v.rule) + "\",\"file\":\"" +
           JsonEscape(v.file) + "\",\"line\":" + std::to_string(v.line) +
           ",\"suppressed\":" + (v.suppressed ? "true" : "false") +
           ",\"reason\":\"" + JsonEscape(v.reason) + "\",\"message\":\"" +
           JsonEscape(v.message) + "\"}";
  }
  out += "]}";
  return out;
}

std::string ToText(const LintResult& result, bool verbose) {
  std::string out;
  size_t suppressed = 0;
  for (const Violation& v : result.violations) {
    if (v.suppressed) {
      ++suppressed;
      if (!verbose) continue;
    }
    out += v.file + ":" + std::to_string(v.line) + ": [" + v.rule + "] " +
           v.message;
    if (v.suppressed) out += "  (suppressed: " + v.reason + ")";
    out += "\n";
  }
  out += std::to_string(result.files_scanned) + " files scanned, " +
         std::to_string(result.UnsuppressedCount()) + " violations, " +
         std::to_string(suppressed) + " suppressed\n";
  return out;
}

}  // namespace splitlock::lint
