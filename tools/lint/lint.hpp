// splitlock_lint — the repo's determinism & concurrency linter.
//
// Every performance PR in this codebase rests on one contract: results are
// bit-identical at any thread count, shard count, and store temperature.
// This linter encodes the source-level invariants behind that contract as
// named, individually-suppressible rules, so a violation is a build-time
// failure instead of a flaky-test archaeology session:
//
//   raw-random      std::uniform_* / rand() / random_device / raw engines
//                   outside util/rng.hpp and exec/stream_rng.hpp. Draw
//                   *shapes* must be the repo's portable ones — stdlib
//                   distributions are implementation-defined.
//   wall-clock      system_clock / time() / gettimeofday in result-
//                   affecting code, and any direct <chrono> use outside
//                   the two clock homes (util/stopwatch.hpp for
//                   durations, obs/clock.hpp for trace timestamps).
//                   Wall clocks are banned because two processes
//                   computing the same store key must agree; confining
//                   chrono itself keeps new clock call sites from
//                   appearing outside the audited shims.
//   unordered-iter  iteration over an unordered_{map,set} — hash-order is
//                   unspecified, so anything it feeds is too. Requires an
//                   ordered-reduction annotation stating why order cannot
//                   leak into results.
//   pointer-sort    sort predicates comparing pointer *values* — address
//                   order differs run to run.
//   shared-capture  writes through a by-reference-captured name inside a
//                   ParallelFor / ParallelForChunked / ParallelReduce
//                   lambda that are not subscripted (the disjoint
//                   `out[i] = ...` idiom) and not local to the lambda.
//   schema-version  result-affecting serialized structs must carry an
//                   up-to-date result-schema annotation (grammar below),
//                   whose version N == store::kResultSchemaVersion.
//                   Bumping the version constant stales every annotation
//                   at once, forcing a visit to each serialized struct.
//   obs-metric-once a metric-name string literal passed to
//                   obs::Registry::Register{Counter,Gauge,Histogram,Time}
//                   may appear at only one call site in the tree. The
//                   registry throws on a second registration at runtime
//                   (the function-local-static idiom runs once per SITE,
//                   not once per process), so a pasted helper or a static
//                   hoisted into a template is a landmine this rule
//                   defuses at lint time. Cross-file: judged after every
//                   file is scanned.
//   bad-pragma      malformed lint pragmas (unknown rule, missing reason).
//                   Not suppressible.
//
// Pragma grammar — the directive is "lint:" immediately followed by a
// keyword; reasons are mandatory (a suppression without a why is itself a
// violation). Concrete examples, using real rule names:
//   // lint:allow(unordered-iter) order-insensitive count reduction
//       suppresses that rule on this line and the next source line
//   // lint:allow-file(wall-clock) profiler tool, timings are the output
//       suppresses that rule for the whole file
//   // lint:ordered-reduction summed into a scalar, order cannot leak
//       sugar for allow(unordered-iter)
//   // lint:result-schema(v3) serialized by store/artifact_io
//       schema annotation checked against kResultSchemaVersion (the v3
//       here is an example; the rule demands the current constant)
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace splitlock::lint {

struct Violation {
  std::string rule;
  std::string file;  // path as reported (relative to root for tree scans)
  int line = 0;
  std::string message;
  bool suppressed = false;
  std::string reason;  // the pragma's reason when suppressed
};

struct LintOptions {
  // Rules to run; empty means all.
  std::vector<std::string> rules;
  // Expected result-schema version for the schema-version rule. -1 means
  // "read kResultSchemaVersion from <root>/src/store/result_store.hpp";
  // when that fails the rule is skipped (fixture mode).
  int expected_schema_version = -1;
};

struct LintResult {
  std::vector<Violation> violations;  // file order, then line order
  size_t files_scanned = 0;

  size_t UnsuppressedCount() const {
    size_t k = 0;
    for (const Violation& v : violations) k += v.suppressed ? 0 : 1;
    return k;
  }
};

// Returns the names of all rules, in report order.
std::vector<std::string> RuleNames();

// Lints one in-memory source. `path` determines per-file allowlists (e.g.
// util/rng.hpp may name raw engines) and is echoed into violations.
LintResult LintSource(const std::string& path, std::string_view content,
                      const LintOptions& opts = {});

// Lints the repo tree rooted at `root`: every .cpp/.hpp/.h under src/,
// tools/, bench/, tests/ (skipping build dirs). Violations carry
// root-relative paths and are sorted by (file, line, rule).
LintResult LintTree(const std::string& root, const LintOptions& opts = {});

// Machine-readable report (one JSON object, stable field order).
std::string ToJson(const LintResult& result);
// Human-readable report ("file:line: [rule] message"), suppressed
// violations included when `verbose`.
std::string ToText(const LintResult& result, bool verbose);

// Parses `kResultSchemaVersion = N` from a header's text. nullopt when the
// constant is absent.
std::optional<int> ParseSchemaVersion(std::string_view header_text);

}  // namespace splitlock::lint
