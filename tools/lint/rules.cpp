// Rule implementations for splitlock_lint. Each rule is a lexical pass
// over one file's token stream; see lint.hpp for what the rules mean and
// why they exist. Heuristics err on the quiet side: a rule that cries wolf
// gets pragma'd into silence, which is worse than missing a corner case.
#include <algorithm>
#include <cstddef>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "lint/rules_internal.hpp"

namespace splitlock::lint::internal {
namespace {

using TokList = std::vector<Token>;

bool PathEndsWith(const std::string& path, std::string_view suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

bool IsIdent(const TokList& t, size_t i, std::string_view text) {
  return i < t.size() && t[i].kind == TokKind::kIdent && t[i].text == text;
}
bool IsPunct(const TokList& t, size_t i, std::string_view text) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == text;
}

// Index of the punct matching the opener at `open` ("(" / "[" / "{"),
// or t.size() when unbalanced.
size_t MatchingClose(const TokList& t, size_t open) {
  const std::string& o = t[open].text;
  const std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text == o) ++depth;
    if (t[i].text == c && --depth == 0) return i;
  }
  return t.size();
}

void Add(std::vector<Violation>* out, const RuleContext& ctx,
         std::string rule, int line, std::string message) {
  out->push_back({std::move(rule), ctx.path, line, std::move(message),
                  /*suppressed=*/false, /*reason=*/""});
}

// --- raw-random -------------------------------------------------------------

// The two files allowed to touch raw engines and own the draw shapes.
constexpr std::string_view kRngHomes[] = {"util/rng.hpp",
                                          "exec/stream_rng.hpp"};

// Type-ish names: any appearance is a violation (declaring a distribution
// is the bug, not just invoking it).
constexpr std::string_view kRandomTypes[] = {
    "random_device",     "uniform_int_distribution",
    "uniform_real_distribution", "normal_distribution",
    "bernoulli_distribution",    "poisson_distribution",
    "exponential_distribution",  "geometric_distribution",
    "discrete_distribution",     "default_random_engine",
    "minstd_rand",       "minstd_rand0",
    "knuth_b",           "ranlux24",
    "ranlux48",          "mt19937",
    "mt19937_64"};

// Function-ish names: violation when called (followed by "(").
constexpr std::string_view kRandomCalls[] = {"rand", "srand", "rand_r",
                                             "drand48", "lrand48", "mrand48"};

// Only when std::-qualified (the repo has its own capitalized Shuffle, and
// unqualified `shuffle` is a plausible local name).
constexpr std::string_view kRandomStdOnly[] = {"shuffle", "random_shuffle"};

void RuleRawRandom(const RuleContext& ctx, std::vector<Violation>* out) {
  for (std::string_view home : kRngHomes) {
    if (PathEndsWith(ctx.path, home)) return;
  }
  const TokList& t = ctx.lex.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& id = t[i].text;
    const bool member = i > 0 && (IsPunct(t, i - 1, ".") ||
                                  IsPunct(t, i - 1, "->"));

    // #include <random> outside the RNG homes means someone is about to
    // reach for a stdlib distribution.
    if (id == "include" && i >= 1 && IsPunct(t, i - 1, "#") &&
        IsPunct(t, i + 1, "<") && IsIdent(t, i + 2, "random") &&
        IsPunct(t, i + 3, ">")) {
      Add(out, ctx, "raw-random", t[i].line,
          "#include <random> outside util/rng.hpp / exec/stream_rng.hpp — "
          "use splitlock::Rng or exec::StreamRng");
      continue;
    }

    auto flag = [&](std::string_view what) {
      Add(out, ctx, "raw-random", t[i].line,
          std::string("raw RNG primitive '") + std::string(what) +
              "' outside util/rng.hpp / exec/stream_rng.hpp — stdlib draw "
              "shapes are implementation-defined; use Rng / StreamRng");
    };

    if (!member) {
      for (std::string_view name : kRandomTypes) {
        if (id == name) {
          flag(name);
          break;
        }
      }
      for (std::string_view name : kRandomCalls) {
        if (id == name && IsPunct(t, i + 1, "(")) {
          flag(name);
          break;
        }
      }
    }
    for (std::string_view name : kRandomStdOnly) {
      if (id == name && i >= 2 && IsPunct(t, i - 1, "::") &&
          IsIdent(t, i - 2, "std")) {
        flag(std::string("std::") + std::string(name));
        break;
      }
    }
  }
}

// --- wall-clock -------------------------------------------------------------

// util/stopwatch.hpp is the designated telemetry shim and obs/clock.hpp
// the trace-timestamp shim; they are allowlisted so the rule's contract
// reads "all timing goes through Stopwatch / MonotonicMicros or the
// steady_clock they wrap". Everywhere else even naming `chrono` is a
// violation: a third clock home is a new place for wall-clock time to
// leak into results.
// store/fs_clock.hpp is the filesystem-clock shim: artifact-tier GC
// orders evictions by file mtime, which is inherently wall-clock but
// never feeds a canonical result (evicting a blob only changes whether a
// flow replays or recomputes — both are bit-identical). See the header's
// own comment for the full argument.
constexpr std::string_view kClockHomes[] = {"util/stopwatch.hpp",
                                            "obs/clock.hpp",
                                            "store/fs_clock.hpp"};

constexpr std::string_view kWallClockTypes[] = {
    "system_clock", "high_resolution_clock",  // h_r_c may alias system_clock
    "gettimeofday", "localtime", "localtime_r", "gmtime", "gmtime_r",
    "strftime", "ctime", "asctime", "mktime", "timespec_get"};

void RuleWallClock(const RuleContext& ctx, std::vector<Violation>* out) {
  for (std::string_view home : kClockHomes) {
    if (PathEndsWith(ctx.path, home)) return;
  }
  const TokList& t = ctx.lex.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    const std::string& id = t[i].text;
    const bool member = i > 0 && (IsPunct(t, i - 1, ".") ||
                                  IsPunct(t, i - 1, "->"));
    if (member) continue;

    // Any appearance of `chrono` — `#include <chrono>`, std::chrono::...
    // — outside the clock homes. String literals do not lex as
    // identifiers, so prose/test fixtures stay quiet.
    if (id == "chrono") {
      Add(out, ctx, "wall-clock", t[i].line,
          "direct <chrono> use outside util/stopwatch.hpp / obs/clock.hpp "
          "— time through util::Stopwatch (durations) or "
          "obs::MonotonicMicros (trace timestamps)");
      continue;
    }
    bool hit = false;
    for (std::string_view name : kWallClockTypes) {
      if (id == name) {
        hit = true;
        break;
      }
    }
    // time(...) / clock() calls: require the call shape and exclude
    // declarations (`double time(` has an identifier right before).
    if (!hit && (id == "time" || id == "clock") && IsPunct(t, i + 1, "(")) {
      const bool declared =
          i > 0 && t[i - 1].kind == TokKind::kIdent &&
          !(IsPunct(t, i - 1, "::"));  // never true for ident; kept explicit
      const bool qualified_std =
          i >= 2 && IsPunct(t, i - 1, "::") && IsIdent(t, i - 2, "std");
      const bool unqualified = i == 0 || t[i - 1].kind == TokKind::kPunct;
      if (!declared && (qualified_std || unqualified)) hit = true;
    }
    if (hit) {
      Add(out, ctx, "wall-clock", t[i].line,
          std::string("wall-clock source '") + id +
              "' — two processes computing the same store key must agree; "
              "use util::Stopwatch / steady_clock for telemetry only");
    }
  }
}

// --- unordered-iter ---------------------------------------------------------

constexpr std::string_view kUnorderedTypes[] = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

void RuleUnorderedIter(const RuleContext& ctx, std::vector<Violation>* out) {
  const TokList& t = ctx.lex.tokens;

  // Pass 1: names declared with an unordered container type.
  std::set<std::string> names;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    bool is_unordered = false;
    for (std::string_view name : kUnorderedTypes) {
      if (t[i].text == name) {
        is_unordered = true;
        break;
      }
    }
    if (!is_unordered || !IsPunct(t, i + 1, "<")) continue;
    // Skip the template argument list.
    int depth = 0;
    size_t j = i + 1;
    for (; j < t.size(); ++j) {
      if (t[j].kind != TokKind::kPunct) continue;
      if (t[j].text == "<") ++depth;
      // Treat >> as two closers (template-closing context).
      if (t[j].text == ">") --depth;
      if (t[j].text == ">>") depth -= 2;
      if (depth <= 0) break;
    }
    // Declarator(s): `> name`, `>& name`, `>* name`, then `, name` chains.
    ++j;
    while (j < t.size() &&
           (IsPunct(t, j, "&") || IsPunct(t, j, "*") || IsPunct(t, j, "&&")))
      ++j;
    while (j < t.size() && t[j].kind == TokKind::kIdent) {
      names.insert(t[j].text);
      ++j;
      // `name(init)`, `name{init}`, `name = init` — skip to , or ; at depth0.
      int d = 0;
      for (; j < t.size(); ++j) {
        if (t[j].kind != TokKind::kPunct) continue;
        const std::string& p = t[j].text;
        if (p == "(" || p == "[" || p == "{") ++d;
        if (p == ")" || p == "]" || p == "}") {
          if (d == 0) break;  // end of enclosing scope — stop
          --d;
        }
        if (d == 0 && (p == "," || p == ";")) break;
      }
      if (!IsPunct(t, j, ",")) break;
      ++j;
    }
  }
  if (names.empty()) return;

  // Pass 2: iteration sites.
  for (size_t i = 0; i < t.size(); ++i) {
    // Range-for whose range expression ends in a tracked name:
    // `for (decl : name)` or `for (decl : obj.name)`.
    if (IsIdent(t, i, "for") && IsPunct(t, i + 1, "(")) {
      const size_t close = MatchingClose(t, i + 1);
      if (close == t.size()) continue;
      // Find the `:` at paren depth 1 (skip `::`, which lexes separately).
      int depth = 0;
      size_t colon = t.size();
      for (size_t j = i + 1; j < close; ++j) {
        if (t[j].kind != TokKind::kPunct) continue;
        if (t[j].text == "(") ++depth;
        if (t[j].text == ")") --depth;
        if (depth == 1 && t[j].text == ":") {
          colon = j;
          break;
        }
      }
      if (colon == t.size()) continue;
      const size_t last = close - 1;
      if (t[last].kind == TokKind::kIdent && names.count(t[last].text) &&
          (last == colon + 1 || IsPunct(t, last - 1, ".") ||
           IsPunct(t, last - 1, "->"))) {
        Add(out, ctx, "unordered-iter", t[i].line,
            std::string("iteration over unordered container '") +
                t[last].text +
                "' — hash order is unspecified and feeds whatever this "
                "loop produces; use an ordered container or annotate "
                "lint:ordered-reduction with a reason");
      }
      continue;
    }
    // name.begin() / name.cbegin() / name.rbegin().
    if (t[i].kind == TokKind::kIdent && names.count(t[i].text) &&
        IsPunct(t, i + 1, ".") && i + 2 < t.size() &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin" ||
         t[i + 2].text == "rbegin") &&
        IsPunct(t, i + 3, "(")) {
      Add(out, ctx, "unordered-iter", t[i].line,
          std::string("iterator walk over unordered container '") +
              t[i].text +
              "' — hash order is unspecified; use an ordered container or "
              "annotate lint:ordered-reduction with a reason");
    }
  }
}

// --- pointer-sort -----------------------------------------------------------

constexpr std::string_view kSortCalls[] = {"sort", "stable_sort",
                                           "partial_sort", "nth_element",
                                           "min_element", "max_element"};

void RulePointerSort(const RuleContext& ctx, std::vector<Violation>* out) {
  const TokList& t = ctx.lex.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    bool is_sort = false;
    for (std::string_view name : kSortCalls) {
      if (t[i].text == name) {
        is_sort = true;
        break;
      }
    }
    if (!is_sort || !IsPunct(t, i + 1, "(")) continue;
    const size_t close = MatchingClose(t, i + 1);
    if (close == t.size()) continue;

    // Find lambdas among the arguments.
    for (size_t j = i + 2; j < close; ++j) {
      if (!IsPunct(t, j, "[")) continue;
      const size_t cap_close = MatchingClose(t, j);
      if (cap_close >= close || !IsPunct(t, cap_close + 1, "(")) continue;
      const size_t params_close = MatchingClose(t, cap_close + 1);
      if (params_close >= close) continue;

      // Pointer params: a depth-1 comma-split chunk containing '*'; the
      // param's name is its last identifier.
      std::vector<std::string> ptr_params;
      size_t chunk_begin = cap_close + 2;
      int depth = 0;
      for (size_t k = cap_close + 2; k <= params_close; ++k) {
        const bool split =
            k == params_close ||
            (depth == 0 && IsPunct(t, k, ","));
        if (t[k].kind == TokKind::kPunct) {
          if (t[k].text == "(" || t[k].text == "<") ++depth;
          if (t[k].text == ")" || t[k].text == ">") --depth;
        }
        if (!split) continue;
        bool has_star = false;
        std::string name;
        for (size_t m = chunk_begin; m < k; ++m) {
          if (IsPunct(t, m, "*")) has_star = true;
          if (t[m].kind == TokKind::kIdent) name = t[m].text;
        }
        if (has_star && !name.empty()) ptr_params.push_back(name);
        chunk_begin = k + 1;
      }
      if (ptr_params.size() < 2) {
        j = cap_close;
        continue;
      }

      // Body: bare `a < b` / `a > b` over two pointer params compares
      // addresses. (`*a < *b` does not match: the rhs token after the
      // comparator is `*`.)
      size_t body_open = params_close + 1;
      while (body_open < close && !IsPunct(t, body_open, "{")) ++body_open;
      if (body_open >= close) continue;
      const size_t body_close = MatchingClose(t, body_open);
      for (size_t k = body_open + 1; k + 2 < body_close; ++k) {
        if (t[k].kind != TokKind::kIdent || t[k + 2].kind != TokKind::kIdent)
          continue;
        if (!IsPunct(t, k + 1, "<") && !IsPunct(t, k + 1, ">") &&
            !IsPunct(t, k + 1, "<=") && !IsPunct(t, k + 1, ">="))
          continue;
        const bool lhs_param =
            std::find(ptr_params.begin(), ptr_params.end(), t[k].text) !=
            ptr_params.end();
        const bool rhs_param =
            std::find(ptr_params.begin(), ptr_params.end(),
                      t[k + 2].text) != ptr_params.end();
        const bool lhs_deref = k > 0 && IsPunct(t, k - 1, "*");
        if (lhs_param && rhs_param && !lhs_deref) {
          Add(out, ctx, "pointer-sort", t[k + 1].line,
              std::string("sort predicate compares pointer values '") +
                  t[k].text + " " + t[k + 1].text + " " + t[k + 2].text +
                  "' — address order differs run to run; compare stable "
                  "ids or dereferenced keys");
        }
      }
      j = cap_close;
    }
  }
}

// --- shared-capture ---------------------------------------------------------

constexpr std::string_view kParallelCalls[] = {"ParallelFor",
                                               "ParallelForChunked",
                                               "ParallelReduce"};

constexpr std::string_view kMutatingMethods[] = {
    "push_back", "emplace_back", "pop_back", "push_front", "pop_front",
    "insert", "emplace", "emplace_hint", "erase", "clear", "resize",
    "reserve", "assign", "append", "push", "pop"};

constexpr std::string_view kAssignOps[] = {"=",  "+=",  "-=", "*=", "/=",
                                           "%=", "&=",  "^=", "|=", "<<=",
                                           ">>="};

// Walks the postfix chain (`a.b[i].c`) backwards from `end` (exclusive).
// Returns the chain's base identifier index, or t.size() when the chain
// does not start with a plain identifier. Sets *subscripted when any part
// of the chain is indexed.
size_t ChainBase(const TokList& t, size_t end, bool* subscripted) {
  size_t i = end;
  while (true) {
    if (i == 0) return t.size();
    const Token& tok = t[i - 1];
    if (tok.kind == TokKind::kPunct && tok.text == "]") {
      // Skip the subscript backwards to its matching '['.
      *subscripted = true;
      int depth = 0;
      size_t j = i - 1;
      while (true) {
        if (t[j].kind == TokKind::kPunct) {
          if (t[j].text == "]") ++depth;
          if (t[j].text == "[" && --depth == 0) break;
        }
        if (j == 0) return t.size();
        --j;
      }
      i = j;
      continue;
    }
    if (tok.kind == TokKind::kIdent) {
      if (i >= 2 && (IsPunct(t, i - 2, ".") || IsPunct(t, i - 2, "->") ||
                     IsPunct(t, i - 2, "::"))) {
        i -= 2;
        continue;
      }
      return i - 1;
    }
    return t.size();
  }
}

// Collects names that look locally declared inside [begin, end): `Type x`,
// `Type& x`, `auto [a, b]`, loop variables. Heuristic, biased towards
// over-collection (an over-collected local silences the rule, it never
// fires it falsely).
void CollectLocals(const TokList& t, size_t begin, size_t end,
                   std::set<std::string>* locals) {
  static const std::set<std::string> kNotTypes = {
      "return", "else",  "do",    "throw", "new",      "delete",
      "case",   "goto",  "break", "continue", "sizeof", "co_return",
      "if",     "while", "for",   "switch"};
  for (size_t i = begin; i < end; ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    // auto [a, b] = ... structured bindings.
    if (t[i].text == "auto") {
      size_t j = i + 1;
      while (j < end && (IsPunct(t, j, "&") || IsPunct(t, j, "&&"))) ++j;
      if (IsPunct(t, j, "[")) {
        const size_t close = MatchingClose(t, j);
        for (size_t k = j + 1; k < close && k < end; ++k) {
          if (t[k].kind == TokKind::kIdent) locals->insert(t[k].text);
        }
        i = std::min(close, end - 1);
        continue;
      }
    }
    if (i == begin) continue;
    const Token& prev = t[i - 1];
    bool declaration = false;
    if (prev.kind == TokKind::kIdent && !kNotTypes.count(prev.text)) {
      // `Type name` where the declarator is followed by an initializer,
      // separator, or range-for colon — not a call (`name(` counts as a
      // constructor-style initializer only when preceded by a type, which
      // this branch cannot distinguish; accept, see bias note above).
      declaration = IsPunct(t, i + 1, "=") || IsPunct(t, i + 1, ";") ||
                    IsPunct(t, i + 1, ",") || IsPunct(t, i + 1, ")") ||
                    IsPunct(t, i + 1, ":") || IsPunct(t, i + 1, "(") ||
                    IsPunct(t, i + 1, "{") || IsPunct(t, i + 1, "[");
    } else if ((prev.kind == TokKind::kPunct &&
                (prev.text == "&" || prev.text == "*" ||
                 prev.text == "&&" || prev.text == ">" ||
                 prev.text == ">>")) &&
               i >= 2 &&
               (t[i - 2].kind == TokKind::kIdent ||
                IsPunct(t, i - 2, ">") || IsPunct(t, i - 2, ">>"))) {
      declaration = IsPunct(t, i + 1, "=") || IsPunct(t, i + 1, ";") ||
                    IsPunct(t, i + 1, ",") || IsPunct(t, i + 1, ")") ||
                    IsPunct(t, i + 1, ":") || IsPunct(t, i + 1, "(") ||
                    IsPunct(t, i + 1, "{");
    }
    if (declaration) locals->insert(t[i].text);
  }
}

struct CaptureInfo {
  bool default_ref = false;
  bool default_copy = false;
  std::set<std::string> by_ref;
  std::set<std::string> by_value;
};

CaptureInfo ParseCaptures(const TokList& t, size_t open, size_t close) {
  CaptureInfo info;
  for (size_t i = open + 1; i < close; ++i) {
    if (IsPunct(t, i, "&")) {
      if (i + 1 < close && t[i + 1].kind == TokKind::kIdent) {
        info.by_ref.insert(t[i + 1].text);
        ++i;
      } else {
        info.default_ref = true;
      }
    } else if (IsPunct(t, i, "=")) {
      // `=` right after `[` or `,` is the default copy capture; inside an
      // init-capture it is an initializer — skip to the next depth-0 comma.
      if (i == open + 1 || IsPunct(t, i - 1, ",")) {
        info.default_copy = true;
      } else {
        int depth = 0;
        while (i < close) {
          if (t[i].kind == TokKind::kPunct) {
            if (t[i].text == "(" || t[i].text == "[" || t[i].text == "{")
              ++depth;
            if (t[i].text == ")" || t[i].text == "]" || t[i].text == "}")
              --depth;
            if (depth == 0 && t[i].text == ",") break;
          }
          ++i;
        }
      }
    } else if (t[i].kind == TokKind::kIdent && t[i].text != "this") {
      info.by_value.insert(t[i].text);
    }
  }
  return info;
}

void AnalyzeLambdaBody(const RuleContext& ctx, const TokList& t,
                       const CaptureInfo& cap, size_t body_open,
                       size_t body_close,
                       const std::set<std::string>& params,
                       std::vector<Violation>* out) {
  std::set<std::string> locals = params;
  locals.insert(cap.by_value.begin(), cap.by_value.end());
  CollectLocals(t, body_open + 1, body_close, &locals);

  auto shared_by_ref = [&](const std::string& name) {
    if (locals.count(name)) return false;
    if (cap.by_ref.count(name)) return true;
    if (cap.default_ref) return true;
    return false;  // default-copy or uncaptured (global/static: out of scope)
  };

  for (size_t i = body_open + 1; i < body_close; ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    const std::string& op = t[i].text;

    bool is_assign = false;
    for (std::string_view a : kAssignOps) {
      if (op == a) {
        is_assign = true;
        break;
      }
    }
    const bool is_incdec = op == "++" || op == "--";
    if (!is_assign && !is_incdec) continue;

    bool subscripted = false;
    size_t base = t.size();
    if (is_assign || (is_incdec && i > body_open + 1 &&
                      (t[i - 1].kind == TokKind::kIdent ||
                       IsPunct(t, i - 1, "]")))) {
      base = ChainBase(t, i, &subscripted);
    } else if (is_incdec && i + 1 < body_close &&
               t[i + 1].kind == TokKind::kIdent) {
      // Prefix ++x / ++x.y[i]: walk the chain forwards.
      size_t j = i + 1;
      base = j;
      while (j + 1 < body_close) {
        if (IsPunct(t, j + 1, ".") || IsPunct(t, j + 1, "->")) {
          j += 2;
        } else if (IsPunct(t, j + 1, "[")) {
          subscripted = true;
          j = MatchingClose(t, j + 1);
        } else {
          break;
        }
      }
    }
    if (base >= t.size() || t[base].kind != TokKind::kIdent) continue;
    // `=` in a declaration initializer: the declared name is a local, so
    // shared_by_ref() already returns false; nothing extra to do.
    const std::string& name = t[base].text;
    if (subscripted || !shared_by_ref(name)) continue;
    Add(out, ctx, "shared-capture", t[i].line,
        std::string("Parallel* lambda writes shared '") + name +
            "' through a by-reference capture without an index-disjoint "
            "subscript — race + order dependence; restructure onto "
            "per-chunk slots or justify with lint:allow(shared-capture)");
  }

  // Mutating member calls on shared captures: v.push_back(...) etc.
  for (size_t i = body_open + 1; i < body_close; ++i) {
    if (t[i].kind != TokKind::kIdent || !IsPunct(t, i + 1, "(")) continue;
    bool mutator = false;
    for (std::string_view m : kMutatingMethods) {
      if (t[i].text == m) {
        mutator = true;
        break;
      }
    }
    if (!mutator) continue;
    if (i < 1 || !(IsPunct(t, i - 1, ".") || IsPunct(t, i - 1, "->")))
      continue;
    bool subscripted = false;
    const size_t base = ChainBase(t, i + 1, &subscripted);
    if (base >= t.size() || t[base].kind != TokKind::kIdent) continue;
    const std::string& name = t[base].text;
    if (name == t[i].text) continue;  // free call, not a member chain
    if (subscripted || !shared_by_ref(name)) continue;
    Add(out, ctx, "shared-capture", t[i].line,
        std::string("Parallel* lambda calls mutating '") + t[i].text +
            "' on shared '" + name +
            "' captured by reference — race + order dependence; use "
            "per-chunk buffers or justify with lint:allow(shared-capture)");
  }
}

void RuleSharedCapture(const RuleContext& ctx, std::vector<Violation>* out) {
  const TokList& t = ctx.lex.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    bool is_parallel = false;
    for (std::string_view name : kParallelCalls) {
      if (t[i].text == name) {
        is_parallel = true;
        break;
      }
    }
    if (!is_parallel) continue;
    // Explicit template arguments: ParallelReduce<T>(...). Skip to the `(`.
    size_t open = i + 1;
    if (IsPunct(t, open, "<")) {
      int depth = 0;
      for (; open < t.size(); ++open) {
        if (t[open].kind != TokKind::kPunct) continue;
        if (t[open].text == "<") ++depth;
        if (t[open].text == ">") --depth;
        if (t[open].text == ">>") depth -= 2;
        if (depth <= 0) break;
      }
      ++open;
    }
    if (!IsPunct(t, open, "(")) continue;
    // Declarations/definitions have the return type right before the name
    // (`void ParallelFor(`, `T ParallelReduce(`); calls are preceded by
    // `::`, an operator, or a statement boundary.
    if (i > 0 && t[i - 1].kind == TokKind::kIdent) continue;
    const size_t close = MatchingClose(t, open);
    if (close == t.size()) continue;

    for (size_t j = open + 1; j < close; ++j) {
      if (!IsPunct(t, j, "[")) continue;
      // Lambdas appear in argument position.
      if (!(IsPunct(t, j - 1, "(") || IsPunct(t, j - 1, ","))) continue;
      const size_t cap_close = MatchingClose(t, j);
      if (cap_close >= close) break;
      const CaptureInfo cap = ParseCaptures(t, j, cap_close);
      if (!cap.default_ref && cap.by_ref.empty()) {
        j = cap_close;
        continue;  // capture-less or by-value lambda cannot share state
      }
      // Parameter names.
      std::set<std::string> params;
      size_t body_open = cap_close + 1;
      if (IsPunct(t, cap_close + 1, "(")) {
        const size_t params_close = MatchingClose(t, cap_close + 1);
        if (params_close >= close) break;
        std::string last_ident;
        int depth = 0;
        for (size_t k = cap_close + 2; k <= params_close; ++k) {
          if (t[k].kind == TokKind::kPunct) {
            if (t[k].text == "(" || t[k].text == "<") ++depth;
            if (t[k].text == ">" || (t[k].text == ")" && k != params_close))
              --depth;
          }
          if ((k == params_close || (depth == 0 && IsPunct(t, k, ","))) &&
              !last_ident.empty()) {
            params.insert(last_ident);
            last_ident.clear();
          } else if (t[k].kind == TokKind::kIdent) {
            last_ident = t[k].text;
          }
        }
        body_open = params_close + 1;
      }
      while (body_open < close && !IsPunct(t, body_open, "{")) ++body_open;
      if (body_open >= close) break;
      const size_t body_close = MatchingClose(t, body_open);
      AnalyzeLambdaBody(ctx, t, cap, body_open, body_close, params, out);
      j = body_close;
    }
  }
}

// --- schema-version ---------------------------------------------------------

// Structs whose layout reaches disk: the artifact-tier codecs
// (store/artifact_io) and the canonical campaign records
// (store/result_store). Changing one without bumping
// store::kResultSchemaVersion silently repartitions every cache.
constexpr std::string_view kSerializedStructs[] = {
    "Netlist",        "Gate",       "Pin",       "Net",
    "Segment",        "ViaStack",   "ConnRoute", "NetRoute",
    "Layout",         "AtpgLockResult", "InjectedFault", "LiftStats",
    "CampaignRecord", "AttackRecord",   "FlowRecord"};

void RuleSchemaVersion(const RuleContext& ctx, std::vector<Violation>* out) {
  if (ctx.expected_schema_version < 0) return;
  // Serialized structs live in the library; fixture paths mirror that.
  if (ctx.path.find("src/") == std::string::npos) return;
  const TokList& t = ctx.lex.tokens;

  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!(IsIdent(t, i, "struct") || IsIdent(t, i, "class"))) continue;
    if (t[i + 1].kind != TokKind::kIdent) continue;
    const std::string& name = t[i + 1].text;
    bool watched = false;
    for (std::string_view s : kSerializedStructs) {
      if (name == s) {
        watched = true;
        break;
      }
    }
    if (!watched) continue;
    // Definition, not forward declaration / elaborated use: `{` either
    // directly, after `final`, or after a base-clause `:` on this line run.
    size_t j = i + 2;
    if (IsIdent(t, j, "final")) ++j;
    if (IsPunct(t, j, ":")) {
      while (j < t.size() && !IsPunct(t, j, "{") && !IsPunct(t, j, ";")) ++j;
    }
    if (!IsPunct(t, j, "{")) continue;
    const size_t body_close = MatchingClose(t, j);
    const int def_line = t[i].line;
    const int end_line =
        body_close < t.size() ? t[body_close].line : t.back().line;

    // Look for a result-schema annotation from a few lines above the
    // definition through the end of the body.
    int annotated_version = -1;
    bool annotated = false;
    for (const Comment& c : ctx.lex.comments) {
      if (c.end_line < def_line - 4 || c.line > end_line) continue;
      const size_t pos = c.text.find("lint:result-schema(v");
      if (pos == std::string::npos) continue;
      annotated = true;
      int v = 0;
      size_t k = pos + std::string_view("lint:result-schema(v").size();
      while (k < c.text.size() && c.text[k] >= '0' && c.text[k] <= '9') {
        v = v * 10 + (c.text[k] - '0');
        ++k;
      }
      if (k < c.text.size() && c.text[k] == ')') annotated_version = v;
    }
    if (!annotated) {
      Add(out, ctx, "schema-version", def_line,
          std::string("serialized struct '") + name +
              "' lacks a lint:result-schema(v" +
              std::to_string(ctx.expected_schema_version) +
              ") annotation — its layout reaches the result store");
    } else if (annotated_version != ctx.expected_schema_version) {
      Add(out, ctx, "schema-version", def_line,
          std::string("stale schema annotation on '") + name + "': v" +
              std::to_string(annotated_version) +
              " but kResultSchemaVersion is " +
              std::to_string(ctx.expected_schema_version) +
              " — confirm the serialized layout, then update the "
              "annotation");
    }
    i = j;  // resume after the header; nested structs are found normally
  }
}

}  // namespace

// --- obs-metric-once (collection half; aggregation lives in the driver) -----

// The function-local-static registration idiom
// (`static obs::Counter* c = Registry::Instance().RegisterCounter("name")`)
// runs once per *call site*, so two sites sharing a literal name — say the
// same helper pasted into two translation units, or a static hoisted into
// a template — throw std::logic_error the first time the second site runs.
// That is a runtime landmine on whichever code path registers second;
// this collector finds the literals so the driver can cross-check the
// whole tree at lint time instead.
void CollectObsRegistrations(const LexResult& lex,
                             std::vector<ObsRegistration>* out) {
  constexpr std::string_view kRegisterCalls[] = {
      "RegisterCounter", "RegisterGauge", "RegisterHistogram",
      "RegisterTime"};
  const TokList& t = lex.tokens;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != TokKind::kIdent) continue;
    bool is_register = false;
    for (std::string_view name : kRegisterCalls) {
      if (t[i].text == name) {
        is_register = true;
        break;
      }
    }
    // Call shape with a literal first argument. Computed names (the store
    // tiers build "prefix.metric" strings) are invisible to a lexical
    // pass and stay the caller's responsibility.
    if (!is_register || !IsPunct(t, i + 1, "(") ||
        t[i + 2].kind != TokKind::kString) {
      continue;
    }
    out->push_back({t[i + 2].text, t[i].line});
  }
}

void RunRules(const RuleContext& ctx, const std::vector<std::string>& rules,
              std::vector<Violation>* out) {
  auto enabled = [&](std::string_view rule) {
    if (rules.empty()) return true;
    for (const std::string& r : rules) {
      if (r == rule) return true;
    }
    return false;
  };
  if (enabled("raw-random")) RuleRawRandom(ctx, out);
  if (enabled("wall-clock")) RuleWallClock(ctx, out);
  if (enabled("unordered-iter")) RuleUnorderedIter(ctx, out);
  if (enabled("pointer-sort")) RulePointerSort(ctx, out);
  if (enabled("shared-capture")) RuleSharedCapture(ctx, out);
  if (enabled("schema-version")) RuleSchemaVersion(ctx, out);
}

}  // namespace splitlock::lint::internal
