// Internal interface between the lint driver (lint.cpp) and the rule
// implementations (rules.cpp). Not part of the public lint API.
#pragma once

#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/lint.hpp"

namespace splitlock::lint::internal {

struct RuleContext {
  const std::string& path;       // as reported in violations
  const LexResult& lex;          // tokens + comments of the file
  int expected_schema_version;   // -1 = schema rule disabled
};

// Appends raw (pre-suppression) violations for every rule in `rules`
// (empty = all) to `out`. bad-pragma violations are NOT produced here —
// the driver owns pragma parsing.
void RunRules(const RuleContext& ctx, const std::vector<std::string>& rules,
              std::vector<Violation>* out);

}  // namespace splitlock::lint::internal
