// Internal interface between the lint driver (lint.cpp) and the rule
// implementations (rules.cpp). Not part of the public lint API.
#pragma once

#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/lint.hpp"

namespace splitlock::lint::internal {

struct RuleContext {
  const std::string& path;       // as reported in violations
  const LexResult& lex;          // tokens + comments of the file
  int expected_schema_version;   // -1 = schema rule disabled
};

// Appends raw (pre-suppression) violations for every rule in `rules`
// (empty = all) to `out`. bad-pragma and obs-metric-once violations are
// NOT produced here — the driver owns pragma parsing, and obs-metric-once
// is a cross-file aggregation over CollectObsRegistrations output.
void RunRules(const RuleContext& ctx, const std::vector<std::string>& rules,
              std::vector<Violation>* out);

// One obs::Registry::Register*("literal") call site in a file.
struct ObsRegistration {
  std::string name;  // the metric-name string literal
  int line = 0;
};

// Appends every Register{Counter,Gauge,Histogram,Time}("literal") call
// site to `out`. Computed (non-literal) names are not collected.
void CollectObsRegistrations(const LexResult& lex,
                             std::vector<ObsRegistration>* out);

}  // namespace splitlock::lint::internal
