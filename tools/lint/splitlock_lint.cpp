// splitlock_lint CLI — see lint.hpp for the rule catalogue and pragma
// grammar.
//
//   splitlock_lint [--root DIR] [--json[=FILE]] [--rule NAME]...
//                  [--schema-version N] [--verbose] [--list-rules]
//
// Exit status: 0 when the tree is clean (suppressed violations are fine —
// they carry reasons), 1 on unsuppressed violations, 2 on usage or I/O
// errors. CI treats the JSON report as an artifact either way.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace {

int Usage() {
  std::cerr
      << "usage: splitlock_lint [--root DIR] [--json[=FILE]] [--rule NAME]\n"
         "                      [--schema-version N] [--verbose] "
         "[--list-rules]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using splitlock::lint::LintOptions;
  using splitlock::lint::LintResult;

  std::string root = ".";
  bool json = false;
  bool verbose = false;
  std::string json_path;
  LintOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg == "--json") {
      json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json = true;
      json_path = arg.substr(7);
    } else if (arg == "--rule" && i + 1 < argc) {
      opts.rules.push_back(argv[++i]);
    } else if (arg.rfind("--rule=", 0) == 0) {
      opts.rules.push_back(arg.substr(7));
    } else if (arg == "--schema-version" && i + 1 < argc) {
      opts.expected_schema_version = std::atoi(argv[++i]);
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--list-rules") {
      for (const std::string& r : splitlock::lint::RuleNames()) {
        std::cout << r << "\n";
      }
      return 0;
    } else {
      std::cerr << "splitlock_lint: unknown argument '" << arg << "'\n";
      return Usage();
    }
  }

  for (const std::string& r : opts.rules) {
    bool known = false;
    for (const std::string& k : splitlock::lint::RuleNames()) {
      known = known || k == r;
    }
    if (!known) {
      std::cerr << "splitlock_lint: unknown rule '" << r
                << "' (--list-rules)\n";
      return 2;
    }
  }

  const LintResult result = splitlock::lint::LintTree(root, opts);
  if (result.files_scanned == 0) {
    std::cerr << "splitlock_lint: no sources found under '" << root
              << "' (expected src/, tools/, bench/, tests/)\n";
    return 2;
  }

  if (json) {
    const std::string doc = splitlock::lint::ToJson(result);
    if (json_path.empty()) {
      std::cout << doc << "\n";
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::cerr << "splitlock_lint: cannot write '" << json_path << "'\n";
        return 2;
      }
      out << doc << "\n";
      // Humans still get the text summary on stderr.
      std::cerr << splitlock::lint::ToText(result, verbose);
    }
  } else {
    std::cout << splitlock::lint::ToText(result, verbose);
  }
  return result.UnsuppressedCount() == 0 ? 0 : 1;
}
