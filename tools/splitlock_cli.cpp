// splitlock_cli — drive the secure split-manufacturing flow from the shell.
//
// Subcommands:
//   lock   <in.bench> <out.bench>  [--key-bits N] [--seed S]
//       Locks a .bench netlist; writes the locked netlist (KEYIN sources)
//       and prints the correct key to stdout.
//   flow   <in.bench>  [--key-bits N] [--split M] [--seed S] [--naive]
//       Full secure flow + proximity attack; prints the scorecard.
//   attack <in.bench>  [--split M] [--seed S] [--engine E]... [--json]
//       Treats the input as an unprotected design: lays it out, splits it
//       and runs the configured attack engines (default: proximity) against
//       the FEOL view. --engine list prints the registry.
//   report <in.bench>  [--key-bits N] [--split M] [--seed S]
//                      [--engine E]... [--json]
//       Full secure flow, then every configured attack engine (default:
//       proximity) against the protected design — engines additionally see
//       the locked netlist, the original as oracle, and the designer key,
//       so SAT-family engines run too. Prints one scorecard per engine.
//   stats  <in.bench>
//       Prints netlist statistics (gates by type, depth, area).
//   suite  <iscas|itc>  [--key-bits N] [--split M] [--seed S] [--threads T]
//                       [--engine E]... [--shards N] [--shard-index I]
//                       [--store DIR] [--store-stats] [--json] [--out F]
//       Concurrent campaign over a whole benchmark suite: each member runs
//       the full lock -> place/route -> split -> attack-portfolio pipeline
//       as a job on the exec thread pool; prints one scorecard row per
//       member. --threads sizes the pool (default: SPLITLOCK_THREADS or
//       hardware concurrency). --shards/--shard-index runs one
//       deterministic round-robin shard of the job list in this process
//       (see `merge`). --store consults/fills a persistent result-store
//       directory, so repeated runs skip completed jobs — including the
//       artifact tier, which warm-starts compute-path jobs from serialized
//       layouts instead of re-running place/route/lift; --store-stats
//       prints the hit/miss/insert counters of both tiers to stderr at
//       exit (plus a JSON stats object on stderr under --json). --json
//       emits the shard outcome table (canonical JSON, timings excluded)
//       instead of text; --out additionally writes it to a file.
//   merge  <shard.json>... [--json] [--out F]
//       Joins shard outcome tables written by sharded `suite` runs into
//       the canonical job-ordered table — bit-identical to what a
//       single-process `suite --json` run emits. Refuses tables from
//       different campaigns (suite/scale/option-hash mismatch) or with
//       missing/duplicate jobs.
//   store gc  --store DIR --budget-bytes N [--json]
//       Artifact-tier garbage collection: evicts flow artifacts (*.art)
//       oldest-first (then largest-first) until the tier fits the byte
//       budget. Summary records are never touched, so warm lookups keep
//       hitting; an evicted flow degrades to recomputation on its next
//       compute-path run, which re-publishes the blob. Prints the scan and
//       eviction totals; exits 1 if any eviction failed.
//
// Engines are attack::AttackConfig specs: a registry name, optionally with
// key=value params — e.g. --engine proximity --engine "sat-portfolio:configs=8".
// --json makes `attack` and `report` emit one machine-readable JSON object
// per run on stdout (for scripting and CI diffing) instead of the tables.
// All JSON outputs carry "schema_version" (store::kResultSchemaVersion).
//
// Sequential .bench files (DFF statements) are analyzed as their FF-cut
// combinational cores.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "attack/engine.hpp"
#include "attack/metrics.hpp"
#include "core/campaign.hpp"
#include "core/flow.hpp"
#include "dist/shard.hpp"
#include "exec/thread_pool.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/libcell.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "store/result_store.hpp"
#include "util/env.hpp"

namespace {

using namespace splitlock;

struct Args {
  std::string command;
  std::string input;
  std::string output;
  size_t key_bits = 128;
  int split_layer = 4;
  uint64_t seed = 1;
  size_t threads = 0;  // 0 = default pool width
  bool naive = false;
  bool json = false;
  std::vector<std::string> engines;  // AttackConfig specs
  // suite/merge distribution + persistence:
  uint64_t shards = 1;
  uint64_t shard_index = 0;
  std::string store_dir;
  bool store_stats = false;
  uint64_t budget_bytes = 0;  // store gc: artifact-tier byte budget
  bool budget_set = false;
  std::string out_path;              // shard/merged table file
  std::vector<std::string> inputs;   // merge: all shard table files
  // Observability (src/obs): --trace FILE exports a Chrome trace-event
  // JSON of the run; --metrics[=FILE] dumps the ordered metrics snapshot
  // to stderr (or FILE). Both leave canonical stdout untouched.
  std::string trace_path;
  bool metrics = false;
  std::string metrics_path;  // empty = stderr
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: splitlock_cli <lock|flow|attack|report|stats> <in.bench> "
      "[out.bench] [--key-bits N] [--split M] [--seed S] [--naive] "
      "[--engine E]... [--json]\n"
      "       splitlock_cli suite <iscas|itc> [--key-bits N] [--split M] "
      "[--seed S] [--threads T] [--engine E]... [--shards N] "
      "[--shard-index I] [--store DIR] [--store-stats] [--json] [--out F]\n"
      "       splitlock_cli merge <shard.json>... [--json] [--out F]\n"
      "       splitlock_cli store gc --store DIR --budget-bytes N [--json]\n"
      "       --engine list   print the attack-engine registry\n"
      "       --trace FILE    export a Chrome trace-event JSON of the run\n"
      "       --metrics[=F]   dump the metrics snapshot to stderr (or F)\n");
  return 2;
}

Netlist Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return ReadBench(buf.str(), path);
}

// Parsed --engine specs (default: proximity). Throws on malformed specs.
std::vector<attack::AttackConfig> EngineConfigs(const Args& args) {
  std::vector<attack::AttackConfig> configs;
  for (const std::string& spec : args.engines) {
    configs.push_back(attack::AttackConfig::Parse(spec));
  }
  if (configs.empty()) {
    configs.push_back(attack::AttackConfig{.engine = "proximity"});
  }
  return configs;
}

int PrintEngineList() {
  attack::EngineRegistry& registry = attack::EngineRegistry::Instance();
  for (const std::string& name : registry.Names()) {
    std::printf("%-14s %s\n", name.c_str(),
                registry.Create(name)->description().c_str());
  }
  return 0;
}

std::string ScoreJson(const attack::AttackScore& score) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"regular_ccr_percent\":%.4f,"
                "\"key_logical_ccr_percent\":%.4f,"
                "\"key_physical_ccr_percent\":%.4f,"
                "\"pnr_percent\":%.4f,\"hd_percent\":%.4f,"
                "\"oer_percent\":%.4f}",
                score.ccr.regular_ccr_percent,
                score.ccr.key_logical_ccr_percent,
                score.ccr.key_physical_ccr_percent, score.pnr_percent,
                score.functional.hd_percent, score.functional.oer_percent);
  return buf;
}

void PrintReportText(const attack::AttackReport& report) {
  std::printf("engine %s (%s): %s\n", report.engine.c_str(),
              report.config.c_str(),
              report.ok ? "ok" : report.error.c_str());
  if (!report.ok) return;
  if (report.key_found) {
    std::printf("  key recovered (%zu bits), functionally correct: %s\n",
                report.recovered_key.size(),
                report.functionally_correct ? "YES" : "no");
  }
  for (const auto& [name, value] : report.counters) {
    std::printf("  %-24s %.4g\n", name.c_str(), value);
  }
  std::printf("  elapsed %.2f s\n", report.elapsed_s);
}

// Runs `configs` against `ctx`; when a report carries a full assignment it
// is scored against the FEOL ground truth. In JSON mode `runs_json` holds
// the combined runs array (nothing is printed here); in text mode results
// print directly and `runs_json` stays empty.
struct EngineRunOutcome {
  std::string runs_json;
  bool any_failed = false;
};

EngineRunOutcome RunEnginesAndRender(
    const attack::AttackContext& ctx,
    const std::vector<attack::AttackConfig>& configs, uint64_t score_patterns,
    bool json) {
  EngineRunOutcome out;
  if (json) out.runs_json = "[";
  bool first = true;
  for (const attack::AttackConfig& config : configs) {
    const attack::AttackReport report = attack::RunAttack(ctx, config);
    if (!report.ok) out.any_failed = true;
    const bool scorable =
        report.ok && ctx.feol &&
        report.assignment.size() == ctx.feol->sink_stubs.size() &&
        !ctx.feol->sink_stubs.empty();
    attack::AttackScore score;
    if (scorable) {
      score = attack::ScoreAttack(*ctx.feol, report.assignment, score_patterns,
                                  ctx.seed);
    }
    if (json) {
      if (!first) out.runs_json += ',';
      out.runs_json += "{\"report\":" + report.ToJson();
      if (scorable) out.runs_json += ",\"score\":" + ScoreJson(score);
      out.runs_json += '}';
    } else {
      PrintReportText(report);
      if (scorable) {
        std::printf(
            "  CCR key log/phys %.1f/%.1f %%, regular %.1f %%  "
            "PNR %.1f %%  HD %.1f %%  OER %.1f %%\n",
            score.ccr.key_logical_ccr_percent,
            score.ccr.key_physical_ccr_percent, score.ccr.regular_ccr_percent,
            score.pnr_percent, score.functional.hd_percent,
            score.functional.oer_percent);
      }
    }
    first = false;
  }
  if (json) out.runs_json += ']';
  return out;
}

int CmdStats(const Args& args) {
  const Netlist nl = Load(args.input);
  std::map<std::string, size_t> by_op;
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.op == GateOp::kDeleted || gate.op == GateOp::kInput ||
        gate.op == GateOp::kOutput) {
      continue;
    }
    ++by_op[GateOpName(gate.op)];
  }
  std::printf("%s: %zu PIs, %zu POs, %zu logic gates, %.1f um^2 cell area\n",
              nl.name().c_str(), nl.inputs().size(), nl.outputs().size(),
              nl.NumLogicGates(), TotalCellArea(nl));
  for (const auto& [op, count] : by_op) {
    std::printf("  %-8s %zu\n", op.c_str(), count);
  }
  return 0;
}

int CmdLock(const Args& args) {
  const Netlist original = Load(args.input);
  lock::AtpgLockOptions opts;
  opts.key_bits = args.key_bits;
  opts.seed = args.seed;
  const lock::AtpgLockResult r = lock::LockWithAtpg(original, opts);
  if (!args.output.empty()) {
    std::ofstream out(args.output);
    out << WriteBench(r.locked.Compacted());
  }
  std::printf("locked %s: %zu key bits (%zu pattern, %zu padded), LEC %s\n",
              original.name().c_str(), r.key.size(), r.pattern_bits,
              r.padding_bits, r.lec_equivalent ? "ok" : "FAILED");
  std::printf("area %.1f -> %.1f um^2 (%+.2f%%)\n", r.original_area_um2,
              r.locked_area_um2, r.AreaDeltaPercent());
  std::printf("key: ");
  for (uint8_t b : r.key) std::printf("%d", b);
  std::printf("\n");
  return r.lec_equivalent ? 0 : 1;
}

int CmdFlow(const Args& args) {
  const Netlist original = Load(args.input);
  core::FlowOptions opts;
  opts.key_bits = args.key_bits;
  opts.split_layer = args.split_layer;
  opts.seed = args.seed;
  if (args.naive) {
    opts.randomize_tie_placement = false;
    opts.lift_key_nets = false;
  }
  const core::FlowResult flow = core::RunSecureFlow(original, opts);
  attack::AttackContext ctx;
  ctx.feol = &flow.feol;
  ctx.seed = args.seed;
  const attack::AttackReport atk =
      attack::RunAttack(ctx, attack::AttackConfig{.engine = "proximity"});
  const attack::AttackScore score = attack::ScoreAttack(
      flow.feol, atk.assignment, ReproPatterns(), args.seed);
  std::printf("%s @ M%d (%s): %zu broken connections\n",
              original.name().c_str(), args.split_layer,
              args.naive ? "naive layout" : "secure flow",
              flow.feol.sink_stubs.size());
  std::printf("CCR key log/phys %.1f/%.1f %%, regular %.1f %%\n",
              score.ccr.key_logical_ccr_percent,
              score.ccr.key_physical_ccr_percent,
              score.ccr.regular_ccr_percent);
  std::printf("HD %.1f %%  OER %.1f %%  PNR %.1f %%\n",
              score.functional.hd_percent, score.functional.oer_percent,
              score.pnr_percent);
  return 0;
}

int CmdAttack(const Args& args) {
  const Netlist original = Load(args.input);
  core::FlowOptions opts;
  opts.seed = args.seed;
  opts.split_layer = args.split_layer;
  opts.lift_key_nets = false;
  opts.randomize_tie_placement = false;
  const core::PhysicalBundle bundle = core::BuildPhysical(original, opts);
  const split::FeolView feol =
      split::SplitLayout(*bundle.layout, args.split_layer);

  attack::AttackContext ctx;
  ctx.feol = &feol;
  ctx.seed = args.seed;
  if (!args.json) {
    std::printf("%s unprotected @ M%d: %zu broken connections\n",
                original.name().c_str(), args.split_layer,
                feol.sink_stubs.size());
  }
  const EngineRunOutcome runs =
      RunEnginesAndRender(ctx, EngineConfigs(args), ReproPatterns(), args.json);
  if (args.json) {
    std::printf("{\"command\":\"attack\",\"schema_version\":%d,"
                "\"design\":%s,\"split_layer\":%d,\"seed\":%llu,"
                "\"broken_connections\":%zu,\"runs\":%s}\n",
                store::kResultSchemaVersion,
                attack::JsonEscape(original.name()).c_str(), args.split_layer,
                (unsigned long long)args.seed, feol.sink_stubs.size(),
                runs.runs_json.c_str());
  }
  return runs.any_failed ? 1 : 0;
}

int CmdReport(const Args& args) {
  const Netlist original = Load(args.input);
  core::FlowOptions opts;
  opts.key_bits = args.key_bits;
  opts.split_layer = args.split_layer;
  opts.seed = args.seed;
  if (args.naive) {
    opts.randomize_tie_placement = false;
    opts.lift_key_nets = false;
  }
  const core::FlowResult flow = core::RunSecureFlow(original, opts);

  attack::AttackContext ctx;
  ctx.feol = &flow.feol;
  ctx.locked = &flow.lock.locked;
  ctx.oracle = &original;
  ctx.correct_key = flow.lock.key;
  ctx.seed = args.seed;
  if (!args.json) {
    std::printf("%s @ M%d (%s): %zu key bits, %zu broken connections\n",
                original.name().c_str(), args.split_layer,
                args.naive ? "naive layout" : "secure flow",
                flow.lock.key.size(), flow.feol.sink_stubs.size());
  }
  const EngineRunOutcome runs =
      RunEnginesAndRender(ctx, EngineConfigs(args), ReproPatterns(), args.json);
  if (args.json) {
    std::printf("{\"command\":\"report\",\"schema_version\":%d,"
                "\"design\":%s,\"split_layer\":%d,\"seed\":%llu,"
                "\"key_bits\":%zu,\"broken_connections\":%zu,\"runs\":%s}\n",
                store::kResultSchemaVersion,
                attack::JsonEscape(original.name()).c_str(), args.split_layer,
                (unsigned long long)args.seed, flow.lock.key.size(),
                flow.feol.sink_stubs.size(), runs.runs_json.c_str());
  }
  return runs.any_failed ? 1 : 0;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  out.flush();
  return out.good();
}

// One scorecard row per record; shared by `suite` (text mode) and `merge`.
// The time column only exists when the caller has wall clocks (a live run);
// merged tables are canonical and carry none.
int PrintRecordTable(const dist::ShardTable& table,
                     const std::vector<double>* elapsed) {
  std::printf("%-6s | %8s | %7s | %7s | %7s | %7s%s\n", "", "broken",
              "CCR %", "PNR %", "HD %", "OER %",
              elapsed ? " | time (s)" : "");
  int rc = 0;
  for (size_t i = 0; i < table.entries.size(); ++i) {
    const store::CampaignRecord& r = table.entries[i].record;
    if (!r.ok) {
      std::printf("%-6s | FAILED: %s\n", r.name.c_str(), r.error.c_str());
      rc = 1;
      continue;
    }
    std::printf("%-6s | %8llu | %7.1f | %7.1f | %7.1f | %7.1f",
                r.name.c_str(),
                static_cast<unsigned long long>(r.broken_connections),
                r.regular_ccr_percent, r.pnr_percent, r.hd_percent,
                r.oer_percent);
    if (elapsed) std::printf(" | %8.2f", (*elapsed)[i]);
    std::printf("\n");
    for (const store::AttackRecord& attack : r.attacks) {
      if (!attack.ok) {
        std::printf("%-6s |   engine %s FAILED: %s\n", "",
                    attack.engine.c_str(), attack.error.c_str());
        rc = 1;
      }
    }
  }
  return rc;
}

int CmdSuite(const Args& args) {
  if (args.input != "iscas" && args.input != "itc") return Usage();
  if (args.threads > 0) exec::ThreadPool::SetDefaultThreadCount(args.threads);
  const dist::ShardPlan plan{args.shards, args.shard_index};
  if (!plan.Valid()) {
    std::fprintf(stderr, "error: --shard-index must be < --shards\n");
    return 2;
  }

  core::FlowOptions opts;
  opts.key_bits = args.key_bits;
  opts.split_layer = args.split_layer;
  opts.seed = args.seed;
  const double scale = args.input == "itc" ? ReproScale() : 1.0;
  std::vector<core::CampaignJob> jobs =
      args.input == "iscas" ? core::IscasCampaignJobs(opts)
                            : core::Itc99CampaignJobs(opts, ReproScale());
  const std::vector<attack::AttackConfig> configs = EngineConfigs(args);
  for (core::CampaignJob& job : jobs) job.attacks = configs;

  std::unique_ptr<store::ResultStore> result_store;
  if (!args.store_dir.empty()) {
    result_store = std::make_unique<store::ResultStore>(args.store_dir);
  }
  core::CampaignOptions campaign_options;
  campaign_options.score_patterns = ReproPatterns();
  campaign_options.store = result_store.get();
  const core::CampaignRunner runner(campaign_options);

  const std::vector<uint64_t> owned = plan.Select(jobs.size());
  std::vector<core::CampaignJob> shard_jobs;
  for (const uint64_t job_index : owned) {
    shard_jobs.push_back(jobs[job_index]);
  }
  const std::vector<core::CampaignOutcome> outcomes = runner.Run(shard_jobs);

  dist::ShardTable table;
  table.suite = args.input;
  table.scale = store::CanonicalDouble(scale);
  table.flow_hash = core::FlowOptionsHash(opts);
  {
    std::vector<std::string> config_strings;
    for (const attack::AttackConfig& config : configs) {
      config_strings.push_back(config.ToString());
    }
    table.attack_hash = store::PortfolioHash(config_strings, ReproPatterns(),
                                             /*run_attack=*/true);
  }
  table.job_count = jobs.size();
  table.num_shards = plan.num_shards;
  table.shard_index = plan.shard_index;
  std::vector<double> elapsed;
  for (size_t i = 0; i < outcomes.size(); ++i) {
    table.entries.push_back(dist::ShardEntry{owned[i], outcomes[i].record});
    elapsed.push_back(outcomes[i].elapsed_s);
  }

  int rc = 0;
  if (args.json) {
    std::fputs(table.ToJson().c_str(), stdout);
    for (const dist::ShardEntry& entry : table.entries) {
      if (!entry.record.ok) rc = 1;
      for (const store::AttackRecord& attack : entry.record.attacks) {
        if (!attack.ok) rc = 1;
      }
    }
  } else {
    std::printf("%zu-job campaign @ M%d, %zu key bits, %zu threads",
                shard_jobs.size(), args.split_layer, args.key_bits,
                args.threads > 0 ? args.threads
                                 : exec::ThreadPool::DefaultThreadCount());
    if (plan.num_shards > 1) {
      std::printf(", shard %llu/%llu",
                  static_cast<unsigned long long>(plan.shard_index),
                  static_cast<unsigned long long>(plan.num_shards));
    }
    std::printf(", attacks:");
    for (const attack::AttackConfig& config : configs) {
      std::printf(" %s", config.ToString().c_str());
    }
    std::printf("\n");
    rc = PrintRecordTable(table, &elapsed);
  }
  if (!args.out_path.empty() && !WriteFile(args.out_path, table.ToJson())) {
    std::fprintf(stderr, "error: cannot write %s\n", args.out_path.c_str());
    rc = 1;
  }
  if (args.store_stats && !result_store) {
    std::fprintf(stderr, "store-stats: no --store directory configured\n");
  }
  if (result_store && args.store_stats) {
    const store::StoreStats stats = result_store->Stats();
    const store::ArtifactStats art = result_store->ArtifactTierStats();
    std::fprintf(stderr,
                 "store-stats: hits=%llu misses=%llu inserts=%llu "
                 "insert_errors=%llu corrupt=%llu bytes_read=%llu "
                 "bytes_written=%llu\n",
                 (unsigned long long)stats.hits,
                 (unsigned long long)stats.misses,
                 (unsigned long long)stats.inserts,
                 (unsigned long long)stats.insert_errors,
                 (unsigned long long)stats.corrupt,
                 (unsigned long long)stats.bytes_read,
                 (unsigned long long)stats.bytes_written);
    std::fprintf(stderr,
                 "store-stats: artifact_hits=%llu artifact_misses=%llu "
                 "artifact_inserts=%llu artifact_insert_errors=%llu "
                 "artifact_corrupt=%llu artifact_bytes_read=%llu "
                 "artifact_bytes_written=%llu\n",
                 (unsigned long long)art.hits, (unsigned long long)art.misses,
                 (unsigned long long)art.inserts,
                 (unsigned long long)art.insert_errors,
                 (unsigned long long)art.corrupt,
                 (unsigned long long)art.bytes_read,
                 (unsigned long long)art.bytes_written);
    if (args.json) {
      // The canonical suite table (stdout/--out) must stay byte-identical
      // between warm and cold runs, so the stats object goes to stderr.
      // Sourced from the process-wide metrics snapshot (the per-instance
      // counters above mirror into it), so the JSON shape is the registry's
      // flat "store.<tier>.<metric>" naming with histogram-style byte
      // totals per tier — the same object bench records embed.
      const std::string json =
          obs::Registry::Instance().Snapshot().FlatCountsJson("store.");
      std::fprintf(stderr, "{\"store_stats\":%s}\n", json.c_str());
    }
  }
  return rc;
}

// `store gc` — offline artifact-tier garbage collection. Safe to run
// while other processes read the store: a reader that loses a blob
// mid-lookup sees an ordinary miss and recomputes (the corruption-
// tolerance contract already covers torn reads).
int CmdStoreGc(const Args& args) {
  if (args.store_dir.empty()) {
    std::fprintf(stderr, "store gc: --store DIR is required\n");
    return 2;
  }
  if (!args.budget_set) {
    std::fprintf(stderr, "store gc: --budget-bytes N is required\n");
    return 2;
  }
  store::ResultStore result_store(args.store_dir);
  const store::GcResult gc =
      result_store.CollectArtifactGarbage(args.budget_bytes);
  if (args.json) {
    std::printf("{\"command\":\"store-gc\",\"schema_version\":%d,"
                "\"budget_bytes\":%llu,\"scanned_blobs\":%llu,"
                "\"scanned_bytes\":%llu,\"evicted_blobs\":%llu,"
                "\"evicted_bytes\":%llu,\"errors\":%llu}\n",
                store::kResultSchemaVersion,
                static_cast<unsigned long long>(args.budget_bytes),
                static_cast<unsigned long long>(gc.scanned_blobs),
                static_cast<unsigned long long>(gc.scanned_bytes),
                static_cast<unsigned long long>(gc.evicted_blobs),
                static_cast<unsigned long long>(gc.evicted_bytes),
                static_cast<unsigned long long>(gc.errors));
  } else {
    std::printf("store gc: %llu blob(s) / %llu bytes scanned, "
                "%llu evicted / %llu bytes freed (budget %llu bytes)\n",
                static_cast<unsigned long long>(gc.scanned_blobs),
                static_cast<unsigned long long>(gc.scanned_bytes),
                static_cast<unsigned long long>(gc.evicted_blobs),
                static_cast<unsigned long long>(gc.evicted_bytes),
                static_cast<unsigned long long>(args.budget_bytes));
    if (gc.errors > 0) {
      std::fprintf(stderr, "store gc: %llu eviction error(s)\n",
                   static_cast<unsigned long long>(gc.errors));
    }
  }
  return gc.errors > 0 ? 1 : 0;
}

int CmdStore(const Args& args) {
  // The store verb carries its own sub-verbs; `gc` is the only one so far.
  if (args.input == "gc") return CmdStoreGc(args);
  return Usage();
}

int CmdMerge(const Args& args) {
  if (args.inputs.empty()) return Usage();
  std::vector<dist::ShardTable> shards;
  for (const std::string& path : args.inputs) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::stringstream buf;
    buf << in.rdbuf();
    try {
      shards.push_back(dist::ShardTable::Parse(buf.str()));
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ": " + e.what());
    }
  }
  const dist::ShardTable merged = dist::MergeShards(shards);

  int rc = 0;
  if (args.json) {
    std::fputs(merged.ToJson().c_str(), stdout);
    // Same exit-code rule as `suite`: a failed job OR a failed attack
    // engine is a failure, so gating on merge behaves like gating on the
    // equivalent single-process run.
    for (const dist::ShardEntry& entry : merged.entries) {
      if (!entry.record.ok) rc = 1;
      for (const store::AttackRecord& attack : entry.record.attacks) {
        if (!attack.ok) rc = 1;
      }
    }
  } else {
    std::printf("%llu-job campaign '%s' @ scale %s, merged from %zu shard "
                "table(s)\n",
                static_cast<unsigned long long>(merged.job_count),
                merged.suite.c_str(), merged.scale.c_str(), shards.size());
    rc = PrintRecordTable(merged, nullptr);
  }
  if (!args.out_path.empty() && !WriteFile(args.out_path, merged.ToJson())) {
    std::fprintf(stderr, "error: cannot write %s\n", args.out_path.c_str());
    rc = 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // `--engine list` needs no input file; honor it wherever it appears so
  // `splitlock_cli attack --engine list` works as the usage line suggests.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine=list") == 0 ||
        (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc &&
         std::strcmp(argv[i + 1], "list") == 0)) {
      return PrintEngineList();
    }
  }
  if (argc < 3) return Usage();
  Args args;
  args.command = argv[1];
  // merge takes a variable list of positional shard files, so every arg
  // from argv[2] on goes through the flag loop; the other subcommands
  // take their input file at argv[2] unconditionally.
  int first_flag = 2;
  if (args.command != "merge") {
    args.input = argv[2];
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--key-bits") {
      const char* v = next();
      if (!v) return Usage();
      args.key_bits = std::strtoull(v, nullptr, 10);
    } else if (a == "--split") {
      const char* v = next();
      if (!v) return Usage();
      args.split_layer = std::atoi(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return Usage();
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return Usage();
      args.threads = std::strtoull(v, nullptr, 10);
    } else if (a == "--engine") {
      const char* v = next();
      if (!v) return Usage();
      args.engines.emplace_back(v);
    } else if (a.rfind("--engine=", 0) == 0) {
      args.engines.emplace_back(a.substr(9));
    } else if (a == "--shards") {
      const char* v = next();
      if (!v) return Usage();
      args.shards = std::strtoull(v, nullptr, 10);
    } else if (a == "--shard-index") {
      const char* v = next();
      if (!v) return Usage();
      args.shard_index = std::strtoull(v, nullptr, 10);
    } else if (a == "--store") {
      const char* v = next();
      if (!v) return Usage();
      args.store_dir = v;
    } else if (a == "--store-stats") {
      args.store_stats = true;
    } else if (a == "--budget-bytes") {
      const char* v = next();
      if (!v) return Usage();
      args.budget_bytes = std::strtoull(v, nullptr, 10);
      args.budget_set = true;
    } else if (a == "--trace") {
      const char* v = next();
      if (!v) return Usage();
      args.trace_path = v;
    } else if (a.rfind("--trace=", 0) == 0) {
      args.trace_path = a.substr(8);
    } else if (a == "--metrics") {
      args.metrics = true;
    } else if (a.rfind("--metrics=", 0) == 0) {
      args.metrics = true;
      args.metrics_path = a.substr(10);
    } else if (a == "--out") {
      const char* v = next();
      if (!v) return Usage();
      args.out_path = v;
    } else if (a == "--json") {
      args.json = true;
    } else if (a == "--naive") {
      args.naive = true;
    } else if (a[0] != '-' && args.command == "merge") {
      args.inputs.push_back(a);
    } else if (a[0] != '-' && args.output.empty()) {
      args.output = a;
    } else {
      return Usage();
    }
  }
  // Observability prologue: name the main track and arm the tracer before
  // any command work so every span of the run is captured. --trace wins
  // over the SPLITLOCK_TRACE environment variable.
  obs::Tracer::Instance().RegisterCurrentThread("main");
  if (!args.trace_path.empty()) {
    obs::Tracer::Instance().Start(args.trace_path);
  } else {
    obs::Tracer::Instance().InitFromEnv();
  }
  int rc = 0;
  bool known_command = true;
  try {
    if (args.command == "stats") rc = CmdStats(args);
    else if (args.command == "lock") rc = CmdLock(args);
    else if (args.command == "flow") rc = CmdFlow(args);
    else if (args.command == "attack") rc = CmdAttack(args);
    else if (args.command == "report") rc = CmdReport(args);
    else if (args.command == "suite") rc = CmdSuite(args);
    else if (args.command == "merge") rc = CmdMerge(args);
    else if (args.command == "store") rc = CmdStore(args);
    else known_command = false;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  // Epilogue runs even when the command failed: a trace of a failing run
  // is exactly what the flag was passed for. Export failure only flips a
  // successful exit code — it never masks the command's own failure.
  const bool tracing = obs::Tracer::Instance().enabled();
  if (tracing && !obs::Tracer::Instance().ExportAndStop()) {
    std::fprintf(stderr, "error: cannot write trace file\n");
    if (rc == 0) rc = 1;
  }
  if (args.metrics) {
    const std::string json = obs::Registry::Instance().Snapshot().ToJson();
    if (args.metrics_path.empty()) {
      std::fprintf(stderr, "%s\n", json.c_str());
    } else if (!WriteFile(args.metrics_path, json + "\n")) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   args.metrics_path.c_str());
      if (rc == 0) rc = 1;
    }
  }
  if (!known_command) return Usage();
  return rc;
}
