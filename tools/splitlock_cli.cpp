// splitlock_cli — drive the secure split-manufacturing flow from the shell.
//
// Subcommands:
//   lock   <in.bench> <out.bench>  [--key-bits N] [--seed S]
//       Locks a .bench netlist; writes the locked netlist (KEYIN sources)
//       and prints the correct key to stdout.
//   flow   <in.bench>  [--key-bits N] [--split M] [--seed S] [--naive]
//       Full secure flow + proximity attack; prints the scorecard.
//   attack <in.bench>  [--split M] [--seed S]
//       Treats the input as an unprotected design: lays it out, splits it
//       and reports how much a proximity attacker recovers.
//   stats  <in.bench>
//       Prints netlist statistics (gates by type, depth, area).
//   suite  <iscas|itc>  [--key-bits N] [--split M] [--seed S] [--threads T]
//       Concurrent campaign over a whole benchmark suite: each member runs
//       the full lock -> place/route -> split -> proximity-attack pipeline
//       as a job on the exec thread pool; prints one scorecard row per
//       member. --threads sizes the pool (default: SPLITLOCK_THREADS or
//       hardware concurrency).
//
// Sequential .bench files (DFF statements) are analyzed as their FF-cut
// combinational cores.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "attack/metrics.hpp"
#include "attack/proximity.hpp"
#include "core/campaign.hpp"
#include "core/flow.hpp"
#include "exec/thread_pool.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/libcell.hpp"
#include "util/env.hpp"

namespace {

using namespace splitlock;

struct Args {
  std::string command;
  std::string input;
  std::string output;
  size_t key_bits = 128;
  int split_layer = 4;
  uint64_t seed = 1;
  size_t threads = 0;  // 0 = default pool width
  bool naive = false;
};

int Usage() {
  std::fprintf(stderr,
               "usage: splitlock_cli <lock|flow|attack|stats> <in.bench> "
               "[out.bench] [--key-bits N] [--split M] [--seed S] "
               "[--naive]\n"
               "       splitlock_cli suite <iscas|itc> [--key-bits N] "
               "[--split M] [--seed S] [--threads T]\n");
  return 2;
}

Netlist Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return ReadBench(buf.str(), path);
}

int CmdStats(const Args& args) {
  const Netlist nl = Load(args.input);
  std::map<std::string, size_t> by_op;
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.op == GateOp::kDeleted || gate.op == GateOp::kInput ||
        gate.op == GateOp::kOutput) {
      continue;
    }
    ++by_op[GateOpName(gate.op)];
  }
  std::printf("%s: %zu PIs, %zu POs, %zu logic gates, %.1f um^2 cell area\n",
              nl.name().c_str(), nl.inputs().size(), nl.outputs().size(),
              nl.NumLogicGates(), TotalCellArea(nl));
  for (const auto& [op, count] : by_op) {
    std::printf("  %-8s %zu\n", op.c_str(), count);
  }
  return 0;
}

int CmdLock(const Args& args) {
  const Netlist original = Load(args.input);
  lock::AtpgLockOptions opts;
  opts.key_bits = args.key_bits;
  opts.seed = args.seed;
  const lock::AtpgLockResult r = lock::LockWithAtpg(original, opts);
  if (!args.output.empty()) {
    std::ofstream out(args.output);
    out << WriteBench(r.locked.Compacted());
  }
  std::printf("locked %s: %zu key bits (%zu pattern, %zu padded), LEC %s\n",
              original.name().c_str(), r.key.size(), r.pattern_bits,
              r.padding_bits, r.lec_equivalent ? "ok" : "FAILED");
  std::printf("area %.1f -> %.1f um^2 (%+.2f%%)\n", r.original_area_um2,
              r.locked_area_um2, r.AreaDeltaPercent());
  std::printf("key: ");
  for (uint8_t b : r.key) std::printf("%d", b);
  std::printf("\n");
  return r.lec_equivalent ? 0 : 1;
}

int CmdFlow(const Args& args) {
  const Netlist original = Load(args.input);
  core::FlowOptions opts;
  opts.key_bits = args.key_bits;
  opts.split_layer = args.split_layer;
  opts.seed = args.seed;
  if (args.naive) {
    opts.randomize_tie_placement = false;
    opts.lift_key_nets = false;
  }
  const core::FlowResult flow = core::RunSecureFlow(original, opts);
  const attack::ProximityResult atk = attack::RunProximityAttack(flow.feol);
  const attack::AttackScore score = attack::ScoreAttack(
      flow.feol, atk.assignment, ReproPatterns(), args.seed);
  std::printf("%s @ M%d (%s): %zu broken connections\n",
              original.name().c_str(), args.split_layer,
              args.naive ? "naive layout" : "secure flow",
              flow.feol.sink_stubs.size());
  std::printf("CCR key log/phys %.1f/%.1f %%, regular %.1f %%\n",
              score.ccr.key_logical_ccr_percent,
              score.ccr.key_physical_ccr_percent,
              score.ccr.regular_ccr_percent);
  std::printf("HD %.1f %%  OER %.1f %%  PNR %.1f %%\n",
              score.functional.hd_percent, score.functional.oer_percent,
              score.pnr_percent);
  return 0;
}

int CmdAttack(const Args& args) {
  const Netlist original = Load(args.input);
  core::FlowOptions opts;
  opts.seed = args.seed;
  opts.split_layer = args.split_layer;
  opts.lift_key_nets = false;
  opts.randomize_tie_placement = false;
  const core::PhysicalBundle bundle = core::BuildPhysical(original, opts);
  const split::FeolView feol =
      split::SplitLayout(*bundle.layout, args.split_layer);
  const attack::ProximityResult atk = attack::RunProximityAttack(feol);
  const attack::AttackScore score =
      attack::ScoreAttack(feol, atk.assignment, ReproPatterns(), args.seed);
  std::printf("%s unprotected @ M%d: %zu broken connections\n",
              original.name().c_str(), args.split_layer,
              feol.sink_stubs.size());
  std::printf("regular CCR %.1f %%  PNR %.1f %%  HD %.1f %%  OER %.1f %%\n",
              score.ccr.regular_ccr_percent, score.pnr_percent,
              score.functional.hd_percent, score.functional.oer_percent);
  return 0;
}

int CmdSuite(const Args& args) {
  if (args.input != "iscas" && args.input != "itc") return Usage();
  if (args.threads > 0) exec::ThreadPool::SetDefaultThreadCount(args.threads);

  core::FlowOptions opts;
  opts.key_bits = args.key_bits;
  opts.split_layer = args.split_layer;
  opts.seed = args.seed;
  const std::vector<core::CampaignJob> jobs =
      args.input == "iscas"
          ? core::IscasCampaignJobs(opts)
          : core::Itc99CampaignJobs(opts, ReproScale());

  core::CampaignOptions campaign_options;
  campaign_options.score_patterns = ReproPatterns();
  const std::vector<core::CampaignOutcome> outcomes =
      core::CampaignRunner(campaign_options).Run(jobs);

  std::printf("%zu-job campaign @ M%d, %zu key bits, %zu threads\n",
              jobs.size(), args.split_layer, args.key_bits,
              args.threads > 0 ? args.threads
                               : exec::ThreadPool::DefaultThreadCount());
  std::printf("%-6s | %8s | %7s | %7s | %7s | %7s | %8s\n", "", "broken",
              "CCR %", "PNR %", "HD %", "OER %", "time (s)");
  int rc = 0;
  for (const core::CampaignOutcome& oc : outcomes) {
    if (!oc.ok) {
      std::printf("%-6s | FAILED: %s\n", oc.name.c_str(), oc.error.c_str());
      rc = 1;
      continue;
    }
    std::printf("%-6s | %8zu | %7.1f | %7.1f | %7.1f | %7.1f | %8.2f\n",
                oc.name.c_str(), oc.flow.feol.sink_stubs.size(),
                oc.score.ccr.regular_ccr_percent, oc.score.pnr_percent,
                oc.score.functional.hd_percent,
                oc.score.functional.oer_percent, oc.elapsed_s);
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  Args args;
  args.command = argv[1];
  args.input = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--key-bits") {
      const char* v = next();
      if (!v) return Usage();
      args.key_bits = std::strtoull(v, nullptr, 10);
    } else if (a == "--split") {
      const char* v = next();
      if (!v) return Usage();
      args.split_layer = std::atoi(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return Usage();
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return Usage();
      args.threads = std::strtoull(v, nullptr, 10);
    } else if (a == "--naive") {
      args.naive = true;
    } else if (a[0] != '-' && args.output.empty()) {
      args.output = a;
    } else {
      return Usage();
    }
  }
  try {
    if (args.command == "stats") return CmdStats(args);
    if (args.command == "lock") return CmdLock(args);
    if (args.command == "flow") return CmdFlow(args);
    if (args.command == "attack") return CmdAttack(args);
    if (args.command == "suite") return CmdSuite(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
