// splitlock_cli — drive the secure split-manufacturing flow from the shell.
//
// Subcommands:
//   lock   <in.bench> <out.bench>  [--key-bits N] [--seed S]
//       Locks a .bench netlist; writes the locked netlist (KEYIN sources)
//       and prints the correct key to stdout.
//   flow   <in.bench>  [--key-bits N] [--split M] [--seed S] [--naive]
//       Full secure flow + proximity attack; prints the scorecard.
//   attack <in.bench>  [--split M] [--seed S] [--engine E]... [--json]
//       Treats the input as an unprotected design: lays it out, splits it
//       and runs the configured attack engines (default: proximity) against
//       the FEOL view. --engine list prints the registry.
//   report <in.bench>  [--key-bits N] [--split M] [--seed S]
//                      [--engine E]... [--json]
//       Full secure flow, then every configured attack engine (default:
//       proximity) against the protected design — engines additionally see
//       the locked netlist, the original as oracle, and the designer key,
//       so SAT-family engines run too. Prints one scorecard per engine.
//   stats  <in.bench>
//       Prints netlist statistics (gates by type, depth, area).
//   suite  <iscas|itc>  [--key-bits N] [--split M] [--seed S] [--threads T]
//                       [--engine E]...
//       Concurrent campaign over a whole benchmark suite: each member runs
//       the full lock -> place/route -> split -> attack-portfolio pipeline
//       as a job on the exec thread pool; prints one scorecard row per
//       member. --threads sizes the pool (default: SPLITLOCK_THREADS or
//       hardware concurrency).
//
// Engines are attack::AttackConfig specs: a registry name, optionally with
// key=value params — e.g. --engine proximity --engine "sat-portfolio:configs=8".
// --json makes `attack` and `report` emit one machine-readable JSON object
// per run on stdout (for scripting and CI diffing) instead of the tables.
//
// Sequential .bench files (DFF statements) are analyzed as their FF-cut
// combinational cores.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "attack/engine.hpp"
#include "attack/metrics.hpp"
#include "core/campaign.hpp"
#include "core/flow.hpp"
#include "exec/thread_pool.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/libcell.hpp"
#include "util/env.hpp"

namespace {

using namespace splitlock;

struct Args {
  std::string command;
  std::string input;
  std::string output;
  size_t key_bits = 128;
  int split_layer = 4;
  uint64_t seed = 1;
  size_t threads = 0;  // 0 = default pool width
  bool naive = false;
  bool json = false;
  std::vector<std::string> engines;  // AttackConfig specs
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: splitlock_cli <lock|flow|attack|report|stats> <in.bench> "
      "[out.bench] [--key-bits N] [--split M] [--seed S] [--naive] "
      "[--engine E]... [--json]\n"
      "       splitlock_cli suite <iscas|itc> [--key-bits N] [--split M] "
      "[--seed S] [--threads T] [--engine E]...\n"
      "       --engine list   print the attack-engine registry\n");
  return 2;
}

Netlist Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return ReadBench(buf.str(), path);
}

// Parsed --engine specs (default: proximity). Throws on malformed specs.
std::vector<attack::AttackConfig> EngineConfigs(const Args& args) {
  std::vector<attack::AttackConfig> configs;
  for (const std::string& spec : args.engines) {
    configs.push_back(attack::AttackConfig::Parse(spec));
  }
  if (configs.empty()) {
    configs.push_back(attack::AttackConfig{.engine = "proximity"});
  }
  return configs;
}

int PrintEngineList() {
  attack::EngineRegistry& registry = attack::EngineRegistry::Instance();
  for (const std::string& name : registry.Names()) {
    std::printf("%-14s %s\n", name.c_str(),
                registry.Create(name)->description().c_str());
  }
  return 0;
}

std::string ScoreJson(const attack::AttackScore& score) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"regular_ccr_percent\":%.4f,"
                "\"key_logical_ccr_percent\":%.4f,"
                "\"key_physical_ccr_percent\":%.4f,"
                "\"pnr_percent\":%.4f,\"hd_percent\":%.4f,"
                "\"oer_percent\":%.4f}",
                score.ccr.regular_ccr_percent,
                score.ccr.key_logical_ccr_percent,
                score.ccr.key_physical_ccr_percent, score.pnr_percent,
                score.functional.hd_percent, score.functional.oer_percent);
  return buf;
}

void PrintReportText(const attack::AttackReport& report) {
  std::printf("engine %s (%s): %s\n", report.engine.c_str(),
              report.config.c_str(),
              report.ok ? "ok" : report.error.c_str());
  if (!report.ok) return;
  if (report.key_found) {
    std::printf("  key recovered (%zu bits), functionally correct: %s\n",
                report.recovered_key.size(),
                report.functionally_correct ? "YES" : "no");
  }
  for (const auto& [name, value] : report.counters) {
    std::printf("  %-24s %.4g\n", name.c_str(), value);
  }
  std::printf("  elapsed %.2f s\n", report.elapsed_s);
}

// Runs `configs` against `ctx`; when a report carries a full assignment it
// is scored against the FEOL ground truth. In JSON mode `runs_json` holds
// the combined runs array (nothing is printed here); in text mode results
// print directly and `runs_json` stays empty.
struct EngineRunOutcome {
  std::string runs_json;
  bool any_failed = false;
};

EngineRunOutcome RunEnginesAndRender(
    const attack::AttackContext& ctx,
    const std::vector<attack::AttackConfig>& configs, uint64_t score_patterns,
    bool json) {
  EngineRunOutcome out;
  if (json) out.runs_json = "[";
  bool first = true;
  for (const attack::AttackConfig& config : configs) {
    const attack::AttackReport report = attack::RunAttack(ctx, config);
    if (!report.ok) out.any_failed = true;
    const bool scorable =
        report.ok && ctx.feol &&
        report.assignment.size() == ctx.feol->sink_stubs.size() &&
        !ctx.feol->sink_stubs.empty();
    attack::AttackScore score;
    if (scorable) {
      score = attack::ScoreAttack(*ctx.feol, report.assignment, score_patterns,
                                  ctx.seed);
    }
    if (json) {
      if (!first) out.runs_json += ',';
      out.runs_json += "{\"report\":" + report.ToJson();
      if (scorable) out.runs_json += ",\"score\":" + ScoreJson(score);
      out.runs_json += '}';
    } else {
      PrintReportText(report);
      if (scorable) {
        std::printf(
            "  CCR key log/phys %.1f/%.1f %%, regular %.1f %%  "
            "PNR %.1f %%  HD %.1f %%  OER %.1f %%\n",
            score.ccr.key_logical_ccr_percent,
            score.ccr.key_physical_ccr_percent, score.ccr.regular_ccr_percent,
            score.pnr_percent, score.functional.hd_percent,
            score.functional.oer_percent);
      }
    }
    first = false;
  }
  if (json) out.runs_json += ']';
  return out;
}

int CmdStats(const Args& args) {
  const Netlist nl = Load(args.input);
  std::map<std::string, size_t> by_op;
  for (GateId g = 0; g < nl.NumGates(); ++g) {
    const Gate& gate = nl.gate(g);
    if (gate.op == GateOp::kDeleted || gate.op == GateOp::kInput ||
        gate.op == GateOp::kOutput) {
      continue;
    }
    ++by_op[GateOpName(gate.op)];
  }
  std::printf("%s: %zu PIs, %zu POs, %zu logic gates, %.1f um^2 cell area\n",
              nl.name().c_str(), nl.inputs().size(), nl.outputs().size(),
              nl.NumLogicGates(), TotalCellArea(nl));
  for (const auto& [op, count] : by_op) {
    std::printf("  %-8s %zu\n", op.c_str(), count);
  }
  return 0;
}

int CmdLock(const Args& args) {
  const Netlist original = Load(args.input);
  lock::AtpgLockOptions opts;
  opts.key_bits = args.key_bits;
  opts.seed = args.seed;
  const lock::AtpgLockResult r = lock::LockWithAtpg(original, opts);
  if (!args.output.empty()) {
    std::ofstream out(args.output);
    out << WriteBench(r.locked.Compacted());
  }
  std::printf("locked %s: %zu key bits (%zu pattern, %zu padded), LEC %s\n",
              original.name().c_str(), r.key.size(), r.pattern_bits,
              r.padding_bits, r.lec_equivalent ? "ok" : "FAILED");
  std::printf("area %.1f -> %.1f um^2 (%+.2f%%)\n", r.original_area_um2,
              r.locked_area_um2, r.AreaDeltaPercent());
  std::printf("key: ");
  for (uint8_t b : r.key) std::printf("%d", b);
  std::printf("\n");
  return r.lec_equivalent ? 0 : 1;
}

int CmdFlow(const Args& args) {
  const Netlist original = Load(args.input);
  core::FlowOptions opts;
  opts.key_bits = args.key_bits;
  opts.split_layer = args.split_layer;
  opts.seed = args.seed;
  if (args.naive) {
    opts.randomize_tie_placement = false;
    opts.lift_key_nets = false;
  }
  const core::FlowResult flow = core::RunSecureFlow(original, opts);
  attack::AttackContext ctx;
  ctx.feol = &flow.feol;
  ctx.seed = args.seed;
  const attack::AttackReport atk =
      attack::RunAttack(ctx, attack::AttackConfig{.engine = "proximity"});
  const attack::AttackScore score = attack::ScoreAttack(
      flow.feol, atk.assignment, ReproPatterns(), args.seed);
  std::printf("%s @ M%d (%s): %zu broken connections\n",
              original.name().c_str(), args.split_layer,
              args.naive ? "naive layout" : "secure flow",
              flow.feol.sink_stubs.size());
  std::printf("CCR key log/phys %.1f/%.1f %%, regular %.1f %%\n",
              score.ccr.key_logical_ccr_percent,
              score.ccr.key_physical_ccr_percent,
              score.ccr.regular_ccr_percent);
  std::printf("HD %.1f %%  OER %.1f %%  PNR %.1f %%\n",
              score.functional.hd_percent, score.functional.oer_percent,
              score.pnr_percent);
  return 0;
}

int CmdAttack(const Args& args) {
  const Netlist original = Load(args.input);
  core::FlowOptions opts;
  opts.seed = args.seed;
  opts.split_layer = args.split_layer;
  opts.lift_key_nets = false;
  opts.randomize_tie_placement = false;
  const core::PhysicalBundle bundle = core::BuildPhysical(original, opts);
  const split::FeolView feol =
      split::SplitLayout(*bundle.layout, args.split_layer);

  attack::AttackContext ctx;
  ctx.feol = &feol;
  ctx.seed = args.seed;
  if (!args.json) {
    std::printf("%s unprotected @ M%d: %zu broken connections\n",
                original.name().c_str(), args.split_layer,
                feol.sink_stubs.size());
  }
  const EngineRunOutcome runs =
      RunEnginesAndRender(ctx, EngineConfigs(args), ReproPatterns(), args.json);
  if (args.json) {
    std::printf("{\"command\":\"attack\",\"design\":%s,"
                "\"split_layer\":%d,\"seed\":%llu,"
                "\"broken_connections\":%zu,\"runs\":%s}\n",
                attack::JsonEscape(original.name()).c_str(), args.split_layer,
                (unsigned long long)args.seed, feol.sink_stubs.size(),
                runs.runs_json.c_str());
  }
  return runs.any_failed ? 1 : 0;
}

int CmdReport(const Args& args) {
  const Netlist original = Load(args.input);
  core::FlowOptions opts;
  opts.key_bits = args.key_bits;
  opts.split_layer = args.split_layer;
  opts.seed = args.seed;
  if (args.naive) {
    opts.randomize_tie_placement = false;
    opts.lift_key_nets = false;
  }
  const core::FlowResult flow = core::RunSecureFlow(original, opts);

  attack::AttackContext ctx;
  ctx.feol = &flow.feol;
  ctx.locked = &flow.lock.locked;
  ctx.oracle = &original;
  ctx.correct_key = flow.lock.key;
  ctx.seed = args.seed;
  if (!args.json) {
    std::printf("%s @ M%d (%s): %zu key bits, %zu broken connections\n",
                original.name().c_str(), args.split_layer,
                args.naive ? "naive layout" : "secure flow",
                flow.lock.key.size(), flow.feol.sink_stubs.size());
  }
  const EngineRunOutcome runs =
      RunEnginesAndRender(ctx, EngineConfigs(args), ReproPatterns(), args.json);
  if (args.json) {
    std::printf("{\"command\":\"report\",\"design\":%s,"
                "\"split_layer\":%d,\"seed\":%llu,\"key_bits\":%zu,"
                "\"broken_connections\":%zu,\"runs\":%s}\n",
                attack::JsonEscape(original.name()).c_str(), args.split_layer,
                (unsigned long long)args.seed, flow.lock.key.size(),
                flow.feol.sink_stubs.size(), runs.runs_json.c_str());
  }
  return runs.any_failed ? 1 : 0;
}

int CmdSuite(const Args& args) {
  if (args.input != "iscas" && args.input != "itc") return Usage();
  if (args.threads > 0) exec::ThreadPool::SetDefaultThreadCount(args.threads);

  core::FlowOptions opts;
  opts.key_bits = args.key_bits;
  opts.split_layer = args.split_layer;
  opts.seed = args.seed;
  std::vector<core::CampaignJob> jobs =
      args.input == "iscas"
          ? core::IscasCampaignJobs(opts)
          : core::Itc99CampaignJobs(opts, ReproScale());
  const std::vector<attack::AttackConfig> configs = EngineConfigs(args);
  for (core::CampaignJob& job : jobs) job.attacks = configs;

  core::CampaignOptions campaign_options;
  campaign_options.score_patterns = ReproPatterns();
  const std::vector<core::CampaignOutcome> outcomes =
      core::CampaignRunner(campaign_options).Run(jobs);

  std::printf("%zu-job campaign @ M%d, %zu key bits, %zu threads, "
              "attacks:",
              jobs.size(), args.split_layer, args.key_bits,
              args.threads > 0 ? args.threads
                               : exec::ThreadPool::DefaultThreadCount());
  for (const attack::AttackConfig& config : configs) {
    std::printf(" %s", config.ToString().c_str());
  }
  std::printf("\n");
  std::printf("%-6s | %8s | %7s | %7s | %7s | %7s | %8s\n", "", "broken",
              "CCR %", "PNR %", "HD %", "OER %", "time (s)");
  int rc = 0;
  for (const core::CampaignOutcome& oc : outcomes) {
    if (!oc.ok) {
      std::printf("%-6s | FAILED: %s\n", oc.name.c_str(), oc.error.c_str());
      rc = 1;
      continue;
    }
    std::printf("%-6s | %8zu | %7.1f | %7.1f | %7.1f | %7.1f | %8.2f\n",
                oc.name.c_str(), oc.flow.feol.sink_stubs.size(),
                oc.score.ccr.regular_ccr_percent, oc.score.pnr_percent,
                oc.score.functional.hd_percent,
                oc.score.functional.oer_percent, oc.elapsed_s);
    for (const attack::AttackReport& report : oc.attacks) {
      if (!report.ok) {
        std::printf("%-6s |   engine %s FAILED: %s\n", "",
                    report.engine.c_str(), report.error.c_str());
        rc = 1;
      }
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // `--engine list` needs no input file; honor it wherever it appears so
  // `splitlock_cli attack --engine list` works as the usage line suggests.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--engine=list") == 0 ||
        (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc &&
         std::strcmp(argv[i + 1], "list") == 0)) {
      return PrintEngineList();
    }
  }
  if (argc < 3) return Usage();
  Args args;
  args.command = argv[1];
  args.input = argv[2];
  for (int i = 3; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--key-bits") {
      const char* v = next();
      if (!v) return Usage();
      args.key_bits = std::strtoull(v, nullptr, 10);
    } else if (a == "--split") {
      const char* v = next();
      if (!v) return Usage();
      args.split_layer = std::atoi(v);
    } else if (a == "--seed") {
      const char* v = next();
      if (!v) return Usage();
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (a == "--threads") {
      const char* v = next();
      if (!v) return Usage();
      args.threads = std::strtoull(v, nullptr, 10);
    } else if (a == "--engine") {
      const char* v = next();
      if (!v) return Usage();
      args.engines.emplace_back(v);
    } else if (a.rfind("--engine=", 0) == 0) {
      args.engines.emplace_back(a.substr(9));
    } else if (a == "--json") {
      args.json = true;
    } else if (a == "--naive") {
      args.naive = true;
    } else if (a[0] != '-' && args.output.empty()) {
      args.output = a;
    } else {
      return Usage();
    }
  }
  try {
    if (args.command == "stats") return CmdStats(args);
    if (args.command == "lock") return CmdLock(args);
    if (args.command == "flow") return CmdFlow(args);
    if (args.command == "attack") return CmdAttack(args);
    if (args.command == "report") return CmdReport(args);
    if (args.command == "suite") return CmdSuite(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return Usage();
}
